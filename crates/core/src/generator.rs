//! The LLM-based Input Generator (paper Fig. 1a) and the coverage reward.

use chatfuzz_baselines::{Feedback, InputGenerator};
use chatfuzz_lm::{Gpt, NgramLm, Tokenizer};
use chatfuzz_rl::{PpoConfig, PpoTrainer};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The coverage-based reward of the model-optimisation step (paper
/// §IV-C.3): a bonus proportional to incremental coverage, a small
/// stand-alone term, and a penalty when the input improved nothing.
#[derive(Debug, Clone, Copy)]
pub struct CoverageReward {
    /// Weight per newly-covered bin.
    pub incremental_weight: f32,
    /// Weight on the stand-alone coverage fraction.
    pub standalone_weight: f32,
    /// Negative reward when `incremental == 0`.
    pub no_improve_penalty: f32,
}

impl Default for CoverageReward {
    fn default() -> Self {
        CoverageReward { incremental_weight: 0.5, standalone_weight: 2.0, no_improve_penalty: -0.5 }
    }
}

impl CoverageReward {
    /// Scores one input's coverage feedback.
    pub fn reward(&self, feedback: &Feedback, total_bins: usize) -> f32 {
        let standalone_frac =
            if total_bins == 0 { 0.0 } else { feedback.standalone as f32 / total_bins as f32 };
        let base = self.standalone_weight * standalone_frac;
        if feedback.incremental > 0 {
            base + self.incremental_weight * (1.0 + (feedback.incremental as f32).ln())
        } else {
            base + self.no_improve_penalty
        }
    }
}

/// Configuration of the LM-based generator.
#[derive(Debug, Clone, Copy)]
pub struct LmGeneratorConfig {
    /// RNG seed for prompt choice and sampling.
    pub seed: u64,
    /// Minimum prompt length in instructions (paper: 2).
    pub prompt_min: usize,
    /// Maximum prompt length in instructions (paper: 5).
    pub prompt_max: usize,
    /// Whether coverage feedback triggers online PPO updates (the paper's
    /// step-3 loop runs *inside* the fuzzing loop).
    pub online_training: bool,
    /// Coverage reward shaping.
    pub reward: CoverageReward,
    /// Total coverage bins of the target (normalises stand-alone rewards).
    pub total_bins: usize,
    /// Independent generations concatenated per test input. The paper's
    /// tests have "the same number of instructions" as TheHuzz's; stitching
    /// a few windowed generations reaches that length without growing the
    /// transformer's context.
    pub samples_per_input: usize,
}

impl Default for LmGeneratorConfig {
    fn default() -> Self {
        LmGeneratorConfig {
            seed: 0x11,
            prompt_min: 2,
            prompt_max: 5,
            online_training: true,
            reward: CoverageReward::default(),
            total_bins: 1,
            samples_per_input: 3,
        }
    }
}

/// The trained-model input generator: prompts with corpus prefixes,
/// samples continuations, decodes them to instruction images, and (when
/// online training is enabled) folds coverage feedback back into the
/// policy with PPO.
#[derive(Debug)]
pub struct LmGenerator {
    tokenizer: Tokenizer,
    trainer: PpoTrainer,
    prompt_pool: Vec<Vec<u32>>,
    cfg: LmGeneratorConfig,
    rng: ChaCha8Rng,
    /// Per input: the (tokens, prompt_len) of each stitched sample.
    pending: Vec<Vec<(Vec<u32>, usize)>>,
}

impl LmGenerator {
    /// Builds the generator around a (pre-trained) policy.
    ///
    /// # Panics
    ///
    /// Panics if `prompt_pool` is empty.
    pub fn new(
        tokenizer: Tokenizer,
        policy: Gpt,
        ppo: PpoConfig,
        prompt_pool: Vec<Vec<u32>>,
        cfg: LmGeneratorConfig,
    ) -> LmGenerator {
        assert!(!prompt_pool.is_empty(), "prompt pool must not be empty");
        LmGenerator {
            tokenizer,
            trainer: PpoTrainer::new(policy, ppo),
            prompt_pool,
            cfg,
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            pending: Vec::new(),
        }
    }

    /// Access to the underlying policy (for checkpointing / inspection).
    pub fn policy(&self) -> &Gpt {
        self.trainer.policy()
    }

    /// Dismantles the generator back into its trained artefacts
    /// (tokenizer, policy, prompt pool) — e.g. to package a
    /// [`ChatFuzzModel`](crate::pipeline::ChatFuzzModel) after an
    /// online-training campaign.
    pub fn into_parts(self) -> (Tokenizer, Gpt, Vec<Vec<u32>>) {
        (self.tokenizer, self.trainer.into_policy(), self.prompt_pool)
    }

    /// Builds a prompt from the first 2–5 instructions of a corpus
    /// function (paper §IV-C.2), framed per the tokenizer's mode.
    fn make_prompt(&mut self) -> Vec<u32> {
        let program = self.prompt_pool.choose(&mut self.rng).expect("non-empty pool");
        let take = self.rng.gen_range(self.cfg.prompt_min..=self.cfg.prompt_max).min(program.len());
        self.tokenizer.encode_prompt(&program[..take])
    }
}

impl InputGenerator for LmGenerator {
    fn name(&self) -> &str {
        "chatfuzz"
    }

    fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        self.pending.clear();
        (0..n)
            .map(|_| {
                let mut bytes = Vec::new();
                let mut samples = Vec::with_capacity(self.cfg.samples_per_input);
                for _ in 0..self.cfg.samples_per_input.max(1) {
                    let prompt = self.make_prompt();
                    let prompt_len = prompt.len();
                    let full = self.trainer.sample(&prompt, &mut self.rng);
                    bytes.extend(self.tokenizer.decode_to_bytes(&full));
                    samples.push((full, prompt_len));
                }
                self.pending.push(samples);
                bytes
            })
            .collect()
    }

    fn observe(&mut self, _batch: &[Vec<u8>], feedback: &[Feedback]) {
        if !self.cfg.online_training {
            self.pending.clear();
            return;
        }
        let mut rollouts = Vec::new();
        for (samples, fb) in self.pending.drain(..).zip(feedback) {
            // All samples stitched into the input share its reward (coarse
            // but unbiased credit assignment).
            let reward = self.cfg.reward.reward(fb, self.cfg.total_bins);
            for (tokens, prompt_len) in samples {
                if tokens.len() <= prompt_len {
                    continue; // nothing was generated; nothing to reinforce
                }
                rollouts.push(self.trainer.score(tokens, prompt_len, reward));
            }
        }
        if !rollouts.is_empty() {
            self.trainer.step(&rollouts);
        }
    }
}

/// N-gram ablation generator (same prompting, no transformer, no RL).
#[derive(Debug)]
pub struct NgramGenerator {
    tokenizer: Tokenizer,
    lm: NgramLm,
    prompt_pool: Vec<Vec<u32>>,
    rng: ChaCha8Rng,
    prompt_min: usize,
    prompt_max: usize,
    max_new: usize,
}

impl NgramGenerator {
    /// Builds the ablation generator.
    ///
    /// # Panics
    ///
    /// Panics if `prompt_pool` is empty.
    pub fn new(
        tokenizer: Tokenizer,
        lm: NgramLm,
        prompt_pool: Vec<Vec<u32>>,
        seed: u64,
        max_new: usize,
    ) -> NgramGenerator {
        assert!(!prompt_pool.is_empty(), "prompt pool must not be empty");
        NgramGenerator {
            tokenizer,
            lm,
            prompt_pool,
            rng: ChaCha8Rng::seed_from_u64(seed),
            prompt_min: 2,
            prompt_max: 5,
            max_new,
        }
    }
}

impl InputGenerator for NgramGenerator {
    fn name(&self) -> &str {
        "chatfuzz-ngram"
    }

    fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|_| {
                let program = self.prompt_pool.choose(&mut self.rng).expect("non-empty");
                let take = self.rng.gen_range(self.prompt_min..=self.prompt_max).min(program.len());
                let tokens = self.tokenizer.encode_prompt(&program[..take]);
                let full = self.lm.generate(&tokens, self.max_new, &mut self.rng);
                self.tokenizer.decode_to_bytes(&full)
            })
            .collect()
    }

    fn observe(&mut self, _batch: &[Vec<u8>], _feedback: &[Feedback]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_corpus::{CorpusConfig, CorpusGenerator};
    use chatfuzz_lm::GptConfig;

    fn setup() -> (Tokenizer, Gpt, Vec<Vec<u32>>) {
        let mut corpus = CorpusGenerator::new(CorpusConfig::default());
        let programs = corpus.generate_words(16);
        let tokenizer = Tokenizer::train(&programs, 128);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = Gpt::new(GptConfig::tiny(tokenizer.vocab_size() as usize), &mut rng);
        (tokenizer, model, programs)
    }

    #[test]
    fn batches_decode_to_word_aligned_images() {
        let (tok, model, pool) = setup();
        let ppo = PpoConfig { max_new_tokens: 12, ..Default::default() };
        let mut generator = LmGenerator::new(tok, model, ppo, pool, LmGeneratorConfig::default());
        let batch = generator.next_batch(4);
        assert_eq!(batch.len(), 4);
        for input in &batch {
            assert_eq!(input.len() % 4, 0, "whole instruction slots");
            assert!(!input.is_empty(), "prompt instructions are included");
        }
    }

    #[test]
    fn online_observe_runs_a_ppo_step() {
        let (tok, model, pool) = setup();
        let ppo = PpoConfig { max_new_tokens: 8, lr: 1e-3, ..Default::default() };
        let cfg =
            LmGeneratorConfig { online_training: true, total_bins: 100, ..Default::default() };
        let mut generator = LmGenerator::new(tok, model, ppo, pool, cfg);
        let batch = generator.next_batch(3);
        let feedback: Vec<Feedback> = (0..3)
            .map(|i| Feedback {
                standalone: 10 + i,
                incremental: i,
                mux_covered: 2,
                ..Default::default()
            })
            .collect();
        // Must not panic, and must clear pending state.
        generator.observe(&batch, &feedback);
        assert!(generator.pending.is_empty());
        // A second round still works (fresh pending).
        let batch2 = generator.next_batch(2);
        generator.observe(&batch2, &feedback[..2]);
    }

    #[test]
    fn reward_shape_matches_paper_semantics() {
        let r = CoverageReward::default();
        let improving = Feedback { standalone: 50, incremental: 10, ..Default::default() };
        let stagnant = Feedback { standalone: 50, incremental: 0, ..Default::default() };
        let total = 200;
        assert!(r.reward(&improving, total) > 0.0, "improvement earns a bonus");
        assert!(
            r.reward(&stagnant, total) < r.reward(&improving, total),
            "no improvement is penalised relative to improvement"
        );
        // Penalty dominates a weak standalone term.
        let weak = Feedback { standalone: 5, incremental: 0, ..Default::default() };
        assert!(r.reward(&weak, total) < 0.0);
    }

    #[test]
    fn ngram_generator_produces_images() {
        let (tok, _, pool) = setup();
        let token_corpus: Vec<Vec<u32>> = pool.iter().map(|p| tok.encode(p)).collect();
        let lm = NgramLm::train(&token_corpus, tok.vocab_size());
        let mut generator = NgramGenerator::new(tok, lm, pool, 3, 24);
        let batch = generator.next_batch(4);
        assert_eq!(batch.len(), 4);
        for input in &batch {
            assert_eq!(input.len() % 4, 0);
        }
    }
}
