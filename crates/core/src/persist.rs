//! Durable campaign snapshots: versioned JSON on disk.
//!
//! A [`CampaignSnapshot`] lives only as long as its process; this module
//! gives it a disk form so the paper's long coverage-over-time campaigns
//! (Fig. 2, time-to-coverage) survive crashes, pre-emption, and planned
//! hand-offs between machines. The serialisation rides the same
//! hand-rolled JSON writer `crate::report` uses (the workspace builds
//! offline — no serde), plus a minimal recursive-descent parser that
//! preserves `u64` precision by keeping number tokens textual until a
//! consumer asks for an integer or a float.
//!
//! # Schema (version [`SCHEMA_VERSION`])
//!
//! One JSON object:
//!
//! | key | contents |
//! |---|---|
//! | `checksum` | since v5: FNV-1a-64 of the rest of the document (see below) |
//! | `schema_version` | integer; readers reject versions they don't know |
//! | `dut` | DUT name the snapshot was taken on |
//! | `space_fingerprint` | structural hash of the coverage space |
//! | `tests_run`, `batches_run`, `total_cycles`, `batches_since_gain` | session counters |
//! | `wall_nanos` | accumulated wall clock |
//! | `stopped_by` | `null` or `{kind, value}` (the last stop condition) |
//! | `coverage` | cumulative + previous-batch bitmap words as hex blobs |
//! | `history` | exact coverage-over-time points |
//! | `generator_stats` | per-generator scheduling statistics |
//! | `scheduler` | [`SchedulerState`]: kind, cursor, epsilon, RNG words, arms (pulls, reward, cycle cost, sliding reward/cycle windows) |
//! | `generators` | per-generator [`GeneratorState`] (or `null`): RNG words, optional `corpus` (discovery counter, seeds as hex word blobs with retention statistics), optional `model` (tokenizer kind + merges, policy weights / Adam moments as hex `f32`-bit blobs, step counter, refreshed prompt pool as hex word blobs, pending rollouts, and — since v4 — the actor/learner publish epoch, batches-since-publish counter, and reward-stamped learner rollout queue) |
//! | `mismatch_log` | raw count, suppression filter, clusters with full examples |
//!
//! Coverage bitmaps are stored as lowercase hex, 16 characters per
//! `u64` word, alongside the space fingerprint; the loader takes the
//! re-elaborated [`Space`] from a freshly probed DUT and refuses blobs
//! whose fingerprint or word count disagree. Model weights and optimiser
//! moments are stored as the hex of each `f32`'s bit pattern (8
//! characters per scalar) — nothing numeric ever passes through a decimal
//! representation, so restored weights are the exported weights to the
//! bit. Mismatch cluster examples
//! round-trip the full [`Mismatch`] enum (tagged objects), and cluster
//! signatures/classifications are *recomputed* from the examples on load
//! so they can never desynchronise from the code that defines them.
//!
//! Writes are atomic (temp file + rename), so a process polling for a
//! snapshot — the cross-process resume tests, a monitoring dashboard —
//! never observes a half-written document. They land through the
//! [`crate::faults`] choke point, so fault-injection tests can tear or
//! crash any write without touching this module.
//!
//! # Checksums and lineage (v5)
//!
//! Rename atomicity does not protect against in-place corruption — a
//! torn page after power loss, a bit flip on a flaky disk. Since v5
//! every document opens with a `checksum` field: the FNV-1a-64 hash of
//! the payload (the document with the checksum field removed), verified
//! before any value in the file is trusted. v4 documents (no checksum)
//! still load.
//!
//! Because the newest checkpoint is exactly the file most likely to be
//! torn by the crash being recovered from, [`save_snapshot_rotated`]
//! keeps a *lineage*: the previous document is rotated to `path.1`, the
//! one before to `path.2`, … up to a caller-chosen depth.
//! [`load_latest_valid`] walks that lineage newest-first, moves corrupt
//! or torn files aside to `*.quarantined` (never deleting, never
//! clobbering an earlier quarantined file), and returns the first good
//! snapshot along with a [`Recovery`] record of everything it skipped —
//! falling through to "no snapshot" (resume from the generation base)
//! only when every entry is bad.

use std::fmt;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use chatfuzz_baselines::{
    ArmState, CorpusSeedState, CorpusState, GeneratorState, ModelSample, ModelState,
    PendingRollout, SchedulerState,
};
use chatfuzz_coverage::{Calculator, CovMap, Space};
use chatfuzz_isa::{Exception, PrivLevel, Reg};
use chatfuzz_softcore::trace::ExitReason;

use crate::campaign::{CampaignSnapshot, CoveragePoint, GeneratorStats, StopCondition};
use crate::mismatch::{classify, Mismatch, MismatchFilter, MismatchLog, UniqueMismatch};
use crate::report::JsonWriter;

/// Version stamped into every snapshot document. Bump on any incompatible
/// schema change; [`parse_snapshot`] rejects unknown versions with
/// [`PersistError::SchemaVersion`] instead of misreading them.
///
/// v2 added the per-generator evolutionary `corpora` array and the
/// per-arm `cycles` cost to scheduler state. v3 generalised `corpora`
/// into the `generators` array ([`GeneratorState`]: RNG stream + optional
/// corpus + optional model with weights as hex `f32`-bit blobs) and added
/// the schedulers' sliding reward windows to the per-arm state. v4 added
/// the actor/learner fields to the model half: the publish epoch, the
/// batches-since-publish counter, and the learner's reward-stamped
/// rollout queue (rewards as hex `f32`-bit patterns). v5 added the
/// leading `checksum` field; it changed no other key, so v4 documents
/// (the oldest this build still reads, see
/// [`MIN_SUPPORTED_SCHEMA_VERSION`]) load unchanged.
pub const SCHEMA_VERSION: u64 = 5;

/// Oldest schema version [`parse_snapshot`] still accepts. v4 is the
/// v5 payload without the checksum field, so reading it costs nothing;
/// v3 and earlier differ structurally and are rejected.
pub const MIN_SUPPORTED_SCHEMA_VERSION: u64 = 4;

/// Why a snapshot could not be loaded.
#[derive(Debug)]
pub enum PersistError {
    /// Reading or writing the file failed.
    Io(io::Error),
    /// The document is not valid JSON or not a valid snapshot.
    Parse(String),
    /// The document's schema version is not supported by this build.
    SchemaVersion {
        /// Version found in the document.
        found: u64,
        /// Version this build reads and writes.
        supported: u64,
    },
    /// The document parses, but its content checksum does not match —
    /// the file was corrupted *in place* (torn page, bit rot), which
    /// rename-atomicity cannot prevent. Like [`PersistError::Parse`],
    /// this means the file is unusable; [`load_latest_valid`] reacts by
    /// quarantining it and falling back through the lineage.
    Checksum {
        /// Checksum the document claims for itself.
        claimed: u64,
        /// Checksum computed over the document as read.
        computed: u64,
    },
    /// The snapshot was taken on a different coverage space than the one
    /// supplied for loading (different design or elaboration).
    SpaceMismatch {
        /// Fingerprint recorded in the document.
        found: u64,
        /// Fingerprint of the supplied space.
        expected: u64,
    },
    /// A file-borne error, annotated with the path it occurred on.
    /// [`load_snapshot`] wraps every failure in this variant so a fleet
    /// coordinator juggling many snapshot files can tell *which* one was
    /// truncated, version-skewed, or from a foreign design. Match on
    /// [`PersistError::root`] for the underlying cause.
    At {
        /// The snapshot file involved.
        path: std::path::PathBuf,
        /// What went wrong with it.
        source: Box<PersistError>,
    },
}

impl PersistError {
    /// Annotates the error with the file it occurred on (idempotent per
    /// path — an already-located error is returned unchanged).
    pub fn at(self, path: &Path) -> PersistError {
        match self {
            PersistError::At { .. } => self,
            source => PersistError::At { path: path.to_path_buf(), source: Box::new(source) },
        }
    }

    /// The underlying cause, with any [`PersistError::At`] location
    /// peeled off — what retry/abort decisions should match on. An io
    /// `NotFound` means "poll again", [`PersistError::Parse`] or
    /// [`PersistError::Checksum`] on a corrupt file means "quarantine
    /// and fall back through the lineage", while a
    /// [`PersistError::SchemaVersion`] or [`PersistError::SpaceMismatch`]
    /// is permanent and must be surfaced, so the distinction is
    /// load-bearing.
    pub fn root(&self) -> &PersistError {
        match self {
            PersistError::At { source, .. } => source.root(),
            other => other,
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot io error: {e}"),
            PersistError::Parse(msg) => write!(f, "snapshot parse error: {msg}"),
            PersistError::SchemaVersion { found, supported } => {
                write!(
                    f,
                    "snapshot schema version {found} not supported (this build \
                     reads versions {MIN_SUPPORTED_SCHEMA_VERSION} through \
                     {supported} and writes version {supported})"
                )
            }
            PersistError::Checksum { claimed, computed } => write!(
                f,
                "snapshot checksum mismatch: document claims {claimed:016x}, \
                 content hashes to {computed:016x} — corrupted in place"
            ),
            PersistError::SpaceMismatch { found, expected } => write!(
                f,
                "snapshot was taken on coverage space {found:#018x}, \
                 expected {expected:#018x}"
            ),
            PersistError::At { path, source } => {
                write!(f, "snapshot `{}`: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::At { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

type Result<T> = std::result::Result<T, PersistError>;

fn err<T>(msg: impl Into<String>) -> Result<T> {
    Err(PersistError::Parse(msg.into()))
}

// ---------------------------------------------------------------------------
// Serialisation
// ---------------------------------------------------------------------------

/// Renders a snapshot as one schema-versioned, checksummed JSON
/// document: the payload below prefixed with a `checksum` field holding
/// the FNV-1a-64 hash of the payload text.
pub fn snapshot_json(snapshot: &CampaignSnapshot) -> String {
    attach_checksum(&payload_json(snapshot))
}

/// The document minus its `checksum` field — exactly the bytes the
/// checksum covers. The writer emits no whitespace, so splicing the
/// checksum in after the opening `{` (and stripping it before
/// verification) is purely textual.
fn payload_json(snapshot: &CampaignSnapshot) -> String {
    let mut w = JsonWriter::new();
    w.open('{');
    w.field_u64("schema_version", SCHEMA_VERSION);
    w.field_str("dut", &snapshot.dut);
    w.field_u64("space_fingerprint", snapshot.coverage().space().fingerprint());
    w.field_u64("tests_run", snapshot.tests_run as u64);
    w.field_u64("batches_run", snapshot.batches_run as u64);
    w.field_u64("total_cycles", snapshot.total_cycles);
    w.field_u64("batches_since_gain", snapshot.batches_since_gain as u64);
    w.field_u64("wall_nanos", snapshot.wall.as_nanos() as u64);
    write_stop(&mut w, "stopped_by", snapshot.stopped_by);

    w.key("coverage");
    w.open('{');
    w.field_str("cumulative", &words_to_hex(snapshot.calculator.total().words()));
    w.field_str(
        "previous_batch_total",
        &words_to_hex(snapshot.calculator.previous_batch_total().words()),
    );
    w.close('}');

    w.key("history");
    w.open('[');
    for p in &snapshot.history {
        w.open('{');
        w.field_u64("tests", p.tests as u64);
        w.field_u64("covered_bins", p.covered_bins as u64);
        w.field_f64("coverage_pct", p.coverage_pct);
        w.field_u64("sim_cycles", p.sim_cycles);
        w.field_u64("wall_nanos", p.wall.as_nanos() as u64);
        w.close('}');
    }
    w.close(']');

    w.key("generator_stats");
    w.open('[');
    for s in &snapshot.gen_stats {
        w.open('{');
        w.field_str("name", &s.name);
        w.field_u64("batches", s.batches as u64);
        w.field_u64("tests", s.tests as u64);
        w.field_u64("new_bins", s.new_bins as u64);
        w.field_u64("cycles", s.cycles);
        w.close('}');
    }
    w.close(']');

    w.key("scheduler");
    w.open('{');
    w.field_str("name", &snapshot.scheduler.scheduler);
    w.field_u64("cursor", snapshot.scheduler.cursor);
    w.field_f64("epsilon", snapshot.scheduler.epsilon);
    w.key("rng_words");
    w.open('[');
    for &word in &snapshot.scheduler.rng_words {
        w.value_u64(u64::from(word));
    }
    w.close(']');
    w.key("arms");
    w.open('[');
    for arm in &snapshot.scheduler.arms {
        w.open('{');
        w.field_u64("pulls", arm.pulls);
        w.field_f64("total_reward", arm.total_reward);
        w.field_u64("cycles", arm.cycles);
        // The sliding reward window of windowed schedulers (empty
        // otherwise). Rust's shortest-roundtrip float formatting keeps
        // the f64 rewards exact through the decimal form.
        w.key("recent_rewards");
        w.open('[');
        for &r in &arm.recent_rewards {
            w.value_f64(r);
        }
        w.close(']');
        w.key("recent_cycles");
        w.open('[');
        for &c in &arm.recent_cycles {
            w.value_u64(c);
        }
        w.close(']');
        w.close('}');
    }
    w.close(']');
    w.close('}');

    w.key("generators");
    w.open('[');
    for state in &snapshot.gen_states {
        match state {
            None => w.value_raw("null"),
            Some(s) => write_generator_state(&mut w, s),
        }
    }
    w.close(']');

    w.key("mismatch_log");
    w.open('{');
    w.field_u64("raw_count", snapshot.log.raw_count() as u64);
    let filter = snapshot.log.filter();
    w.key("filter");
    w.open('{');
    w.field_raw("ignore_length", if filter.ignore_length { "true" } else { "false" });
    w.key("ignore_regs");
    w.open('[');
    for reg in &filter.ignore_regs {
        w.value_u64(reg.index() as u64);
    }
    w.close(']');
    w.close('}');
    w.key("clusters");
    w.open('[');
    for u in snapshot.log.unique() {
        w.open('{');
        w.field_u64("count", u.count as u64);
        w.key("example");
        write_mismatch(&mut w, &u.example);
        w.close('}');
    }
    w.close(']');
    w.close('}');

    w.close('}');
    w.finish()
}

/// FNV-1a-64 — tiny, dependency-free, and plenty for catching torn
/// pages and bit rot (this is an integrity check, not an authenticity
/// one; an adversary with write access to checkpoint files can do far
/// worse than forge a hash).
fn fnv1a64(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// `{"checksum":"<16 hex>",` + the payload minus its opening brace.
const CHECKSUM_PREFIX: &str = "{\"checksum\":\"";

fn attach_checksum(payload: &str) -> String {
    let sum = fnv1a64(payload.bytes());
    format!("{CHECKSUM_PREFIX}{sum:016x}\",{}", &payload[1..])
}

/// Verifies a document's leading checksum field against the rest of the
/// text. Returns whether a checksum was present at all (v4 documents
/// carry none); a present-but-wrong checksum is
/// [`PersistError::Checksum`], a present-but-malformed one is a parse
/// error.
fn verify_checksum(text: &str) -> Result<bool> {
    let Some(rest) = text.strip_prefix(CHECKSUM_PREFIX) else {
        return Ok(false);
    };
    let Some(hex) = rest.get(..16) else {
        return err("checksum field truncated");
    };
    let Ok(claimed) = u64::from_str_radix(hex, 16) else {
        return err(format!("checksum `{hex}` is not 16 hex digits"));
    };
    let Some(payload_rest) = rest.get(18..).filter(|_| rest[16..].starts_with("\",")) else {
        return err("malformed checksum field");
    };
    // The covered payload is `{` + everything after the checksum field.
    let computed = fnv1a64(std::iter::once(b'{').chain(payload_rest.bytes()));
    if computed != claimed {
        return Err(PersistError::Checksum { claimed, computed });
    }
    Ok(true)
}

fn write_generator_state(w: &mut JsonWriter, s: &GeneratorState) {
    w.open('{');
    w.field_str("generator", &s.generator);
    w.key("rng_words");
    w.open('[');
    for &word in &s.rng_words {
        w.value_u64(u64::from(word));
    }
    w.close(']');
    match &s.corpus {
        None => w.field_raw("corpus", "null"),
        Some(c) => {
            w.key("corpus");
            write_corpus(w, c);
        }
    }
    match &s.model {
        None => w.field_raw("model", "null"),
        Some(m) => {
            w.key("model");
            write_model(w, m);
        }
    }
    w.close('}');
}

fn write_corpus(w: &mut JsonWriter, c: &CorpusState) {
    w.open('{');
    w.field_u64("next_found_at", c.next_found_at);
    w.key("seeds");
    w.open('[');
    for s in &c.seeds {
        w.open('{');
        w.field_str("words", &words32_to_hex(&s.words));
        w.field_u64("fingerprint", s.fingerprint);
        w.field_u64("new_bins", s.new_bins);
        w.field_u64("mux_bins", s.mux_bins);
        w.field_raw("mismatch", if s.mismatch { "true" } else { "false" });
        w.field_u64("picks", s.picks);
        w.field_u64("found_at", s.found_at);
        w.close('}');
    }
    w.close(']');
    w.close('}');
}

fn write_model(w: &mut JsonWriter, m: &ModelState) {
    w.open('{');
    w.field_raw("bpe", if m.bpe { "true" } else { "false" });
    // Merge pairs flattened: [l0, r0, l1, r1, …].
    w.key("merges");
    w.open('[');
    for &(left, right) in &m.merges {
        w.value_u64(u64::from(left));
        w.value_u64(u64::from(right));
    }
    w.close(']');
    let blob_list = |w: &mut JsonWriter, key: &str, blobs: &[Vec<f32>]| {
        w.key(key);
        w.open('[');
        for blob in blobs {
            w.value_str(&f32s_to_hex(blob));
        }
        w.close(']');
    };
    blob_list(w, "params", &m.params);
    blob_list(w, "opt_m", &m.opt_m);
    blob_list(w, "opt_v", &m.opt_v);
    w.field_u64("opt_steps", m.opt_steps);
    w.key("prompt_pool");
    w.open('[');
    for program in &m.prompt_pool {
        w.value_str(&words32_to_hex(program));
    }
    w.close(']');
    w.key("pending");
    w.open('[');
    for group in &m.pending {
        w.open('[');
        for sample in group {
            w.open('{');
            w.field_u64("prompt_len", sample.prompt_len as u64);
            w.key("tokens");
            w.open('[');
            for &t in &sample.tokens {
                w.value_u64(u64::from(t));
            }
            w.close(']');
            w.close('}');
        }
        w.close(']');
    }
    w.close(']');
    w.field_u64("publish_epoch", m.publish_epoch);
    w.field_u64("batches_since_publish", m.batches_since_publish);
    // The learner queue: like `pending`, but flat and reward-stamped;
    // the reward rides as its f32 bit pattern so the queue round-trips
    // bit-exactly.
    w.key("learner_queue");
    w.open('[');
    for rollout in &m.learner_queue {
        w.open('{');
        w.field_u64("prompt_len", rollout.prompt_len as u64);
        w.field_str("reward", &f32s_to_hex(&[rollout.reward]));
        w.key("tokens");
        w.open('[');
        for &t in &rollout.tokens {
            w.value_u64(u64::from(t));
        }
        w.close(']');
        w.close('}');
    }
    w.close(']');
    w.close('}');
}

fn write_stop(w: &mut JsonWriter, key: &str, stop: Option<StopCondition>) {
    let Some(stop) = stop else {
        w.field_raw(key, "null");
        return;
    };
    w.key(key);
    w.open('{');
    match stop {
        StopCondition::Tests(n) => {
            w.field_str("kind", "tests");
            w.field_u64("value", n as u64);
        }
        StopCondition::SimCycles(n) => {
            w.field_str("kind", "sim_cycles");
            w.field_u64("value", n);
        }
        StopCondition::WallClock(d) => {
            w.field_str("kind", "wall_clock");
            w.field_u64("value", d.as_nanos() as u64);
        }
        StopCondition::CoveragePct(pct) => {
            w.field_str("kind", "coverage_pct");
            w.field_f64("value", pct);
        }
        StopCondition::Plateau(n) => {
            w.field_str("kind", "plateau");
            w.field_u64("value", n as u64);
        }
    }
    w.close('}');
}

fn write_mismatch(w: &mut JsonWriter, m: &Mismatch) {
    w.open('{');
    match m {
        Mismatch::ExitDivergence { golden, dut } => {
            w.field_str("kind", "exit");
            w.key("golden");
            write_exit(w, golden);
            w.key("dut");
            write_exit(w, dut);
        }
        Mismatch::LengthDivergence { golden, dut } => {
            w.field_str("kind", "length");
            w.field_u64("golden", *golden as u64);
            w.field_u64("dut", *dut as u64);
        }
        Mismatch::PcDivergence { index, golden_pc, dut_pc } => {
            w.field_str("kind", "pc");
            w.field_u64("index", *index as u64);
            w.field_u64("golden_pc", *golden_pc);
            w.field_u64("dut_pc", *dut_pc);
        }
        Mismatch::WordDivergence { index, pc, golden_word, dut_word } => {
            w.field_str("kind", "word");
            w.field_u64("index", *index as u64);
            w.field_u64("pc", *pc);
            w.field_u64("golden_word", u64::from(*golden_word));
            w.field_u64("dut_word", u64::from(*dut_word));
        }
        Mismatch::RdWriteDivergence { index, pc, word, golden, dut } => {
            w.field_str("kind", "rd");
            w.field_u64("index", *index as u64);
            w.field_u64("pc", *pc);
            w.field_u64("word", u64::from(*word));
            write_rd_write(w, "golden", *golden);
            write_rd_write(w, "dut", *dut);
        }
        Mismatch::TrapDivergence { index, pc, golden_cause, dut_cause } => {
            w.field_str("kind", "trap");
            w.field_u64("index", *index as u64);
            w.field_u64("pc", *pc);
            match golden_cause {
                Some(c) => w.field_u64("golden_cause", *c),
                None => w.field_raw("golden_cause", "null"),
            }
            match dut_cause {
                Some(c) => w.field_u64("dut_cause", *c),
                None => w.field_raw("dut_cause", "null"),
            }
        }
        Mismatch::MemDivergence { index, pc } => {
            w.field_str("kind", "mem");
            w.field_u64("index", *index as u64);
            w.field_u64("pc", *pc);
        }
    }
    w.close('}');
}

fn write_rd_write(w: &mut JsonWriter, key: &str, rd: Option<(Reg, u64)>) {
    match rd {
        None => w.field_raw(key, "null"),
        Some((reg, value)) => {
            w.key(key);
            w.open('{');
            w.field_u64("reg", reg.index() as u64);
            w.field_u64("value", value);
            w.close('}');
        }
    }
}

fn write_exit(w: &mut JsonWriter, exit: &ExitReason) {
    w.open('{');
    match exit {
        ExitReason::Wfi => w.field_str("kind", "wfi"),
        ExitReason::ToHost(v) => {
            w.field_str("kind", "tohost");
            w.field_u64("value", *v);
        }
        ExitReason::BudgetExhausted => w.field_str("kind", "budget_exhausted"),
        ExitReason::TrapStorm => w.field_str("kind", "trap_storm"),
        ExitReason::UnhandledTrap(e) => {
            w.field_str("kind", "unhandled_trap");
            w.key("exception");
            write_exception(w, e);
        }
    }
    w.close('}');
}

fn write_exception(w: &mut JsonWriter, e: &Exception) {
    w.open('{');
    let tagged_addr = |w: &mut JsonWriter, kind: &str, addr: u64| {
        w.field_str("kind", kind);
        w.field_u64("addr", addr);
    };
    match e {
        Exception::InstrAddrMisaligned { addr } => tagged_addr(w, "instr_addr_misaligned", *addr),
        Exception::InstrAccessFault { addr } => tagged_addr(w, "instr_access_fault", *addr),
        Exception::Breakpoint { addr } => tagged_addr(w, "breakpoint", *addr),
        Exception::LoadAddrMisaligned { addr } => tagged_addr(w, "load_addr_misaligned", *addr),
        Exception::LoadAccessFault { addr } => tagged_addr(w, "load_access_fault", *addr),
        Exception::StoreAddrMisaligned { addr } => tagged_addr(w, "store_addr_misaligned", *addr),
        Exception::StoreAccessFault { addr } => tagged_addr(w, "store_access_fault", *addr),
        Exception::IllegalInstr { word } => {
            w.field_str("kind", "illegal_instr");
            w.field_u64("word", u64::from(*word));
        }
        Exception::Ecall { from } => {
            w.field_str("kind", "ecall");
            w.field_u64("from", *from as u64);
        }
    }
    w.close('}');
}

/// One fixed-width lowercase-hex blob codec serves both word widths:
/// `u64` coverage-bitmap words (16 chars each) and `u32` instruction
/// words (8 chars each).
fn words_to_hex_width(words: impl Iterator<Item = u64>, digits: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for w in words {
        let _ = write!(out, "{w:0digits$x}");
    }
    out
}

fn hex_to_words_width(hex: &str, digits: usize, what: &str) -> Result<Vec<u64>> {
    if !hex.len().is_multiple_of(digits) {
        return err(format!("{what} hex blob length {} is not a multiple of {digits}", hex.len()));
    }
    hex.as_bytes()
        .chunks(digits)
        .map(|chunk| {
            let s = std::str::from_utf8(chunk)
                .map_err(|_| PersistError::Parse(format!("{what} hex blob is not ASCII")))?;
            u64::from_str_radix(s, 16)
                .map_err(|_| PersistError::Parse(format!("bad {what} hex word `{s}`")))
        })
        .collect()
}

fn words_to_hex(words: &[u64]) -> String {
    words_to_hex_width(words.iter().copied(), 16)
}

fn hex_to_words(hex: &str) -> Result<Vec<u64>> {
    hex_to_words_width(hex, 16, "coverage")
}

fn words32_to_hex(words: &[u32]) -> String {
    words_to_hex_width(words.iter().map(|&w| u64::from(w)), 8)
}

fn hex_to_words32(hex: &str) -> Result<Vec<u32>> {
    // 8 hex digits never exceed u32::MAX, so the narrowing is lossless.
    Ok(hex_to_words_width(hex, 8, "instruction")?.into_iter().map(|w| w as u32).collect())
}

/// Model weights travel as the hex of each `f32`'s bit pattern — the
/// round trip is `to_bits`/`from_bits`, so no value (including NaNs,
/// subnormals, and signed zeros) is disturbed by a decimal detour.
fn f32s_to_hex(values: &[f32]) -> String {
    words_to_hex_width(values.iter().map(|&v| u64::from(v.to_bits())), 8)
}

fn hex_to_f32s(hex: &str) -> Result<Vec<f32>> {
    Ok(hex_to_words_width(hex, 8, "weight")?
        .into_iter()
        .map(|w| f32::from_bits(w as u32))
        .collect())
}

// ---------------------------------------------------------------------------
// A minimal JSON value + parser
// ---------------------------------------------------------------------------

/// Parsed JSON. Numbers stay textual so `u64` counters round-trip without
/// passing through `f64` (which only holds 53 bits of integer precision).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    fn get(&self, key: &str) -> Result<&Json> {
        match self.opt(key) {
            Some(v) => Ok(v),
            None => err(format!("missing key `{key}`")),
        }
    }

    fn opt(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64> {
        match self {
            Json::Num(s) => match s.parse::<u64>() {
                Ok(v) => Ok(v),
                Err(_) => err(format!("{what}: `{s}` is not a u64")),
            },
            other => err(format!("{what}: expected number, got {}", other.type_name())),
        }
    }

    fn as_usize(&self, what: &str) -> Result<usize> {
        Ok(self.as_u64(what)? as usize)
    }

    fn as_f64(&self, what: &str) -> Result<f64> {
        match self {
            Json::Num(s) => match s.parse::<f64>() {
                Ok(v) => Ok(v),
                Err(_) => err(format!("{what}: `{s}` is not a number")),
            },
            Json::Null => Ok(f64::NAN), // the writer emits null for non-finite floats
            other => err(format!("{what}: expected number, got {}", other.type_name())),
        }
    }

    fn as_bool(&self, what: &str) -> Result<bool> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => err(format!("{what}: expected bool, got {}", other.type_name())),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("{what}: expected string, got {}", other.type_name())),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            other => err(format!("{what}: expected array, got {}", other.type_name())),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn fail<T>(&self, msg: &str) -> Result<T> {
        err(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.fail(&format!("expected `{}`", b as char))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            None => self.fail("unexpected end of document"),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => self.fail(&format!("unexpected byte `{}`", b as char)),
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.fail("expected `,` or `}`"),
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.fail("expected `,` or `]`"),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return self.fail("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return self.fail("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let end = self.pos + 4;
                            let Some(hex) = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                            else {
                                return self.fail("truncated \\u escape");
                            };
                            let Ok(code) = u32::from_str_radix(hex, 16) else {
                                return self.fail("bad \\u escape");
                            };
                            self.pos = end;
                            // The writer only escapes control characters,
                            // which are never surrogates.
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return self.fail("\\u escape is not a scalar value"),
                            }
                        }
                        _ => return self.fail("unknown escape"),
                    }
                }
                _ => {
                    // Re-sync to the char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let Some(chunk) =
                        self.bytes.get(start..end).and_then(|c| std::str::from_utf8(c).ok())
                    else {
                        return self.fail("invalid UTF-8 in string");
                    };
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if token.parse::<f64>().is_err() {
            return self.fail(&format!("bad number token `{token}`"));
        }
        Ok(Json::Num(token.to_string()))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_json(text: &str) -> Result<Json> {
    let mut p = Parser::new(text);
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.fail("trailing garbage after document");
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Deserialisation
// ---------------------------------------------------------------------------

/// Parses a snapshot document produced by [`snapshot_json`].
///
/// The caller supplies the coverage [`Space`] of a freshly probed DUT
/// (resume builds the DUT anyway); the document's recorded fingerprint
/// must match, which catches resuming against the wrong design long
/// before the campaign asserts.
///
/// The version gate runs first (so a future writer's document is
/// reported as version skew, not as whatever its checksum scheme looks
/// like to this build), then the v5 content checksum is verified before
/// any value in the document is trusted.
pub fn parse_snapshot(text: &str, space: &Arc<Space>) -> Result<CampaignSnapshot> {
    let doc = parse_json(text)?;
    let version = doc.get("schema_version")?.as_u64("schema_version")?;
    if !(MIN_SUPPORTED_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
        return Err(PersistError::SchemaVersion { found: version, supported: SCHEMA_VERSION });
    }
    if !verify_checksum(text)? && version >= 5 {
        return err("schema v5 document is missing its checksum field");
    }
    let found = doc.get("space_fingerprint")?.as_u64("space_fingerprint")?;
    if found != space.fingerprint() {
        return Err(PersistError::SpaceMismatch { found, expected: space.fingerprint() });
    }

    let coverage = doc.get("coverage")?;
    let cumulative = read_map(coverage.get("cumulative")?, "coverage.cumulative", space)?;
    let previous =
        read_map(coverage.get("previous_batch_total")?, "coverage.previous_batch_total", space)?;
    if !previous.is_subset_of(&cumulative) {
        return err("previous-batch total covers bins the cumulative map does not");
    }

    let history = doc
        .get("history")?
        .as_arr("history")?
        .iter()
        .map(|p| {
            Ok(CoveragePoint {
                tests: p.get("tests")?.as_usize("history.tests")?,
                covered_bins: p.get("covered_bins")?.as_usize("history.covered_bins")?,
                coverage_pct: p.get("coverage_pct")?.as_f64("history.coverage_pct")?,
                sim_cycles: p.get("sim_cycles")?.as_u64("history.sim_cycles")?,
                wall: Duration::from_nanos(p.get("wall_nanos")?.as_u64("history.wall_nanos")?),
            })
        })
        .collect::<Result<Vec<_>>>()?;

    let gen_stats = doc
        .get("generator_stats")?
        .as_arr("generator_stats")?
        .iter()
        .map(|s| {
            Ok(GeneratorStats {
                name: s.get("name")?.as_str("generator_stats.name")?.to_string(),
                batches: s.get("batches")?.as_usize("generator_stats.batches")?,
                tests: s.get("tests")?.as_usize("generator_stats.tests")?,
                new_bins: s.get("new_bins")?.as_usize("generator_stats.new_bins")?,
                cycles: s.get("cycles")?.as_u64("generator_stats.cycles")?,
            })
        })
        .collect::<Result<Vec<_>>>()?;

    let sched = doc.get("scheduler")?;
    let rng_words = read_rng_words(sched.get("rng_words")?, "scheduler.rng_words")?;
    let arms = sched
        .get("arms")?
        .as_arr("scheduler.arms")?
        .iter()
        .map(|a| {
            let recent_rewards = a
                .get("recent_rewards")?
                .as_arr("scheduler.arms.recent_rewards")?
                .iter()
                .map(|r| r.as_f64("scheduler.arms.recent_rewards"))
                .collect::<Result<Vec<_>>>()?;
            let recent_cycles = a
                .get("recent_cycles")?
                .as_arr("scheduler.arms.recent_cycles")?
                .iter()
                .map(|c| c.as_u64("scheduler.arms.recent_cycles"))
                .collect::<Result<Vec<_>>>()?;
            if recent_rewards.len() != recent_cycles.len() {
                return err("scheduler arm reward/cycle windows disagree in length");
            }
            Ok(ArmState {
                pulls: a.get("pulls")?.as_u64("scheduler.arms.pulls")?,
                total_reward: a.get("total_reward")?.as_f64("scheduler.arms.total_reward")?,
                cycles: a.get("cycles")?.as_u64("scheduler.arms.cycles")?,
                recent_rewards,
                recent_cycles,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    let scheduler = SchedulerState {
        scheduler: sched.get("name")?.as_str("scheduler.name")?.to_string(),
        cursor: sched.get("cursor")?.as_u64("scheduler.cursor")?,
        epsilon: sched.get("epsilon")?.as_f64("scheduler.epsilon")?,
        rng_words,
        arms,
    };

    let gen_states = doc
        .get("generators")?
        .as_arr("generators")?
        .iter()
        .map(|g| if *g == Json::Null { Ok(None) } else { read_generator_state(g).map(Some) })
        .collect::<Result<Vec<_>>>()?;
    if gen_states.len() != gen_stats.len() {
        return err(format!(
            "generators carries {} entries for {} generator stats",
            gen_states.len(),
            gen_stats.len()
        ));
    }

    let log_doc = doc.get("mismatch_log")?;
    let filter_doc = log_doc.get("filter")?;
    let ignore_regs = filter_doc
        .get("ignore_regs")?
        .as_arr("mismatch_log.filter.ignore_regs")?
        .iter()
        .map(|r| {
            let index = r.as_u64("ignore_regs")?;
            u8::try_from(index)
                .ok()
                .and_then(Reg::new)
                .ok_or_else(|| PersistError::Parse(format!("bad register index {index}")))
        })
        .collect::<Result<Vec<_>>>()?;
    let filter = MismatchFilter {
        ignore_length: filter_doc.get("ignore_length")?.as_bool("filter.ignore_length")?,
        ignore_regs,
    };
    let clusters = log_doc
        .get("clusters")?
        .as_arr("mismatch_log.clusters")?
        .iter()
        .map(|c| {
            let example = read_mismatch(c.get("example")?)?;
            Ok(UniqueMismatch {
                signature: example.signature(),
                bug: classify(&example),
                example,
                count: c.get("count")?.as_usize("clusters.count")?,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    let raw_count = log_doc.get("raw_count")?.as_usize("mismatch_log.raw_count")?;
    let clustered: usize = clusters.iter().map(|c| c.count).sum();
    if raw_count < clustered {
        return err(format!("raw_count {raw_count} is below the {clustered} clustered mismatches"));
    }
    let log = MismatchLog::from_parts(raw_count, clusters, filter);

    Ok(CampaignSnapshot {
        dut: doc.get("dut")?.as_str("dut")?.to_string(),
        calculator: Calculator::from_parts(cumulative, previous),
        log,
        history,
        gen_stats,
        scheduler,
        gen_states,
        tests_run: doc.get("tests_run")?.as_usize("tests_run")?,
        batches_run: doc.get("batches_run")?.as_usize("batches_run")?,
        total_cycles: doc.get("total_cycles")?.as_u64("total_cycles")?,
        batches_since_gain: doc.get("batches_since_gain")?.as_usize("batches_since_gain")?,
        wall: Duration::from_nanos(doc.get("wall_nanos")?.as_u64("wall_nanos")?),
        stopped_by: read_stop(doc.get("stopped_by")?)?,
    })
}

fn read_rng_words(value: &Json, what: &str) -> Result<Vec<u32>> {
    value
        .as_arr(what)?
        .iter()
        .map(|wrd| {
            let v = wrd.as_u64(what)?;
            u32::try_from(v).map_err(|_| PersistError::Parse(format!("{what}: {v} exceeds u32")))
        })
        .collect()
}

fn read_generator_state(value: &Json) -> Result<GeneratorState> {
    let corpus = value.get("corpus")?;
    let corpus = if *corpus == Json::Null { None } else { Some(read_corpus(corpus)?) };
    let model = value.get("model")?;
    let model = if *model == Json::Null { None } else { Some(read_model(model)?) };
    Ok(GeneratorState {
        generator: value.get("generator")?.as_str("generators.generator")?.to_string(),
        rng_words: read_rng_words(value.get("rng_words")?, "generators.rng_words")?,
        corpus,
        model,
    })
}

fn read_corpus(value: &Json) -> Result<CorpusState> {
    let seeds = value
        .get("seeds")?
        .as_arr("corpus.seeds")?
        .iter()
        .map(|s| {
            Ok(CorpusSeedState {
                words: hex_to_words32(s.get("words")?.as_str("seeds.words")?)?,
                fingerprint: s.get("fingerprint")?.as_u64("seeds.fingerprint")?,
                new_bins: s.get("new_bins")?.as_u64("seeds.new_bins")?,
                mux_bins: s.get("mux_bins")?.as_u64("seeds.mux_bins")?,
                mismatch: s.get("mismatch")?.as_bool("seeds.mismatch")?,
                picks: s.get("picks")?.as_u64("seeds.picks")?,
                found_at: s.get("found_at")?.as_u64("seeds.found_at")?,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(CorpusState {
        next_found_at: value.get("next_found_at")?.as_u64("corpus.next_found_at")?,
        seeds,
    })
}

fn read_model(value: &Json) -> Result<ModelState> {
    let merge_ids = value
        .get("merges")?
        .as_arr("model.merges")?
        .iter()
        .map(|m| {
            let v = m.as_u64("model.merges")?;
            u32::try_from(v)
                .map_err(|_| PersistError::Parse(format!("model.merges: {v} exceeds u32")))
        })
        .collect::<Result<Vec<_>>>()?;
    if !merge_ids.len().is_multiple_of(2) {
        return err("model.merges holds an odd number of ids (pairs expected)");
    }
    let merges: Vec<(u32, u32)> = merge_ids.chunks_exact(2).map(|p| (p[0], p[1])).collect();

    let blob_list = |key: &str| -> Result<Vec<Vec<f32>>> {
        value.get(key)?.as_arr(key)?.iter().map(|b| hex_to_f32s(b.as_str(key)?)).collect()
    };
    let params = blob_list("params")?;
    let opt_m = blob_list("opt_m")?;
    let opt_v = blob_list("opt_v")?;
    if opt_m.len() != opt_v.len() {
        return err("model optimiser moment lists disagree in length");
    }

    let prompt_pool = value
        .get("prompt_pool")?
        .as_arr("model.prompt_pool")?
        .iter()
        .map(|p| hex_to_words32(p.as_str("model.prompt_pool")?))
        .collect::<Result<Vec<_>>>()?;

    let pending = value
        .get("pending")?
        .as_arr("model.pending")?
        .iter()
        .map(|group| {
            group
                .as_arr("model.pending")?
                .iter()
                .map(|s| {
                    let tokens = s
                        .get("tokens")?
                        .as_arr("pending.tokens")?
                        .iter()
                        .map(|t| {
                            let v = t.as_u64("pending.tokens")?;
                            u32::try_from(v).map_err(|_| {
                                PersistError::Parse(format!("pending.tokens: {v} exceeds u32"))
                            })
                        })
                        .collect::<Result<Vec<_>>>()?;
                    Ok(ModelSample {
                        tokens,
                        prompt_len: s.get("prompt_len")?.as_usize("pending.prompt_len")?,
                    })
                })
                .collect::<Result<Vec<_>>>()
        })
        .collect::<Result<Vec<_>>>()?;

    let read_tokens = |s: &Json, what: &str| -> Result<Vec<u32>> {
        s.get("tokens")?
            .as_arr(what)?
            .iter()
            .map(|t| {
                let v = t.as_u64(what)?;
                u32::try_from(v)
                    .map_err(|_| PersistError::Parse(format!("{what}: {v} exceeds u32")))
            })
            .collect()
    };
    let learner_queue = value
        .get("learner_queue")?
        .as_arr("model.learner_queue")?
        .iter()
        .map(|s| {
            let reward_bits = hex_to_f32s(s.get("reward")?.as_str("learner_queue.reward")?)?;
            if reward_bits.len() != 1 {
                return err("learner_queue.reward must hold exactly one f32");
            }
            Ok(PendingRollout {
                tokens: read_tokens(s, "learner_queue.tokens")?,
                prompt_len: s.get("prompt_len")?.as_usize("learner_queue.prompt_len")?,
                reward: reward_bits[0],
            })
        })
        .collect::<Result<Vec<_>>>()?;

    Ok(ModelState {
        bpe: value.get("bpe")?.as_bool("model.bpe")?,
        merges,
        params,
        opt_m,
        opt_v,
        opt_steps: value.get("opt_steps")?.as_u64("model.opt_steps")?,
        prompt_pool,
        pending,
        publish_epoch: value.get("publish_epoch")?.as_u64("model.publish_epoch")?,
        batches_since_publish: value
            .get("batches_since_publish")?
            .as_u64("model.batches_since_publish")?,
        learner_queue,
    })
}

fn read_map(value: &Json, what: &str, space: &Arc<Space>) -> Result<CovMap> {
    let words = hex_to_words(value.as_str(what)?)?;
    match CovMap::from_words(space, words) {
        Some(map) => Ok(map),
        None => err(format!("{what}: bitmap does not fit the supplied coverage space")),
    }
}

fn read_stop(value: &Json) -> Result<Option<StopCondition>> {
    if *value == Json::Null {
        return Ok(None);
    }
    let kind = value.get("kind")?.as_str("stopped_by.kind")?;
    let v = value.get("value")?;
    let stop = match kind {
        "tests" => StopCondition::Tests(v.as_usize("stopped_by.value")?),
        "sim_cycles" => StopCondition::SimCycles(v.as_u64("stopped_by.value")?),
        "wall_clock" => {
            StopCondition::WallClock(Duration::from_nanos(v.as_u64("stopped_by.value")?))
        }
        "coverage_pct" => StopCondition::CoveragePct(v.as_f64("stopped_by.value")?),
        "plateau" => StopCondition::Plateau(v.as_usize("stopped_by.value")?),
        other => return err(format!("unknown stop condition kind `{other}`")),
    };
    Ok(Some(stop))
}

fn read_mismatch(value: &Json) -> Result<Mismatch> {
    let kind = value.get("kind")?.as_str("example.kind")?;
    let m = match kind {
        "exit" => Mismatch::ExitDivergence {
            golden: read_exit(value.get("golden")?)?,
            dut: read_exit(value.get("dut")?)?,
        },
        "length" => Mismatch::LengthDivergence {
            golden: value.get("golden")?.as_usize("length.golden")?,
            dut: value.get("dut")?.as_usize("length.dut")?,
        },
        "pc" => Mismatch::PcDivergence {
            index: value.get("index")?.as_usize("pc.index")?,
            golden_pc: value.get("golden_pc")?.as_u64("pc.golden_pc")?,
            dut_pc: value.get("dut_pc")?.as_u64("pc.dut_pc")?,
        },
        "word" => Mismatch::WordDivergence {
            index: value.get("index")?.as_usize("word.index")?,
            pc: value.get("pc")?.as_u64("word.pc")?,
            golden_word: read_u32(value.get("golden_word")?, "word.golden_word")?,
            dut_word: read_u32(value.get("dut_word")?, "word.dut_word")?,
        },
        "rd" => Mismatch::RdWriteDivergence {
            index: value.get("index")?.as_usize("rd.index")?,
            pc: value.get("pc")?.as_u64("rd.pc")?,
            word: read_u32(value.get("word")?, "rd.word")?,
            golden: read_rd_write(value.get("golden")?)?,
            dut: read_rd_write(value.get("dut")?)?,
        },
        "trap" => Mismatch::TrapDivergence {
            index: value.get("index")?.as_usize("trap.index")?,
            pc: value.get("pc")?.as_u64("trap.pc")?,
            golden_cause: read_opt_u64(value.get("golden_cause")?, "trap.golden_cause")?,
            dut_cause: read_opt_u64(value.get("dut_cause")?, "trap.dut_cause")?,
        },
        "mem" => Mismatch::MemDivergence {
            index: value.get("index")?.as_usize("mem.index")?,
            pc: value.get("pc")?.as_u64("mem.pc")?,
        },
        other => return err(format!("unknown mismatch kind `{other}`")),
    };
    Ok(m)
}

fn read_u32(value: &Json, what: &str) -> Result<u32> {
    let v = value.as_u64(what)?;
    u32::try_from(v).map_err(|_| PersistError::Parse(format!("{what}: {v} exceeds u32")))
}

fn read_opt_u64(value: &Json, what: &str) -> Result<Option<u64>> {
    if *value == Json::Null {
        Ok(None)
    } else {
        Ok(Some(value.as_u64(what)?))
    }
}

fn read_rd_write(value: &Json) -> Result<Option<(Reg, u64)>> {
    if *value == Json::Null {
        return Ok(None);
    }
    let index = value.get("reg")?.as_u64("rd.reg")?;
    let reg = u8::try_from(index)
        .ok()
        .and_then(Reg::new)
        .ok_or_else(|| PersistError::Parse(format!("bad register index {index}")))?;
    Ok(Some((reg, value.get("value")?.as_u64("rd.value")?)))
}

fn read_exit(value: &Json) -> Result<ExitReason> {
    let kind = value.get("kind")?.as_str("exit.kind")?;
    let exit = match kind {
        "wfi" => ExitReason::Wfi,
        "tohost" => ExitReason::ToHost(value.get("value")?.as_u64("tohost.value")?),
        "budget_exhausted" => ExitReason::BudgetExhausted,
        "trap_storm" => ExitReason::TrapStorm,
        "unhandled_trap" => ExitReason::UnhandledTrap(read_exception(value.get("exception")?)?),
        other => return err(format!("unknown exit kind `{other}`")),
    };
    Ok(exit)
}

fn read_exception(value: &Json) -> Result<Exception> {
    let kind = value.get("kind")?.as_str("exception.kind")?;
    let addr = |what: &str| -> Result<u64> { value.get("addr")?.as_u64(what) };
    let e = match kind {
        "instr_addr_misaligned" => Exception::InstrAddrMisaligned { addr: addr(kind)? },
        "instr_access_fault" => Exception::InstrAccessFault { addr: addr(kind)? },
        "breakpoint" => Exception::Breakpoint { addr: addr(kind)? },
        "load_addr_misaligned" => Exception::LoadAddrMisaligned { addr: addr(kind)? },
        "load_access_fault" => Exception::LoadAccessFault { addr: addr(kind)? },
        "store_addr_misaligned" => Exception::StoreAddrMisaligned { addr: addr(kind)? },
        "store_access_fault" => Exception::StoreAccessFault { addr: addr(kind)? },
        "illegal_instr" => {
            Exception::IllegalInstr { word: read_u32(value.get("word")?, "illegal_instr.word")? }
        }
        "ecall" => {
            let from = match value.get("from")?.as_u64("ecall.from")? {
                0 => PrivLevel::User,
                1 => PrivLevel::Supervisor,
                3 => PrivLevel::Machine,
                other => return err(format!("bad privilege level {other}")),
            };
            Exception::Ecall { from }
        }
        other => return err(format!("unknown exception kind `{other}`")),
    };
    Ok(e)
}

// ---------------------------------------------------------------------------
// Disk I/O
// ---------------------------------------------------------------------------

/// Writes a snapshot to `path` atomically: the document lands in a
/// sibling temp file first and is renamed into place (through the
/// [`crate::faults`] choke point), so concurrent readers (and pollers
/// waiting for a checkpoint to appear) never see a partial document.
/// Parent directories are created as needed. Failures are annotated
/// with `path` via [`PersistError::At`], like every other file-borne
/// error in this module.
pub fn save_snapshot(path: &Path, snapshot: &CampaignSnapshot) -> Result<()> {
    let sink = chatfuzz_telemetry::global();
    let span = sink.now();
    let write = || -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        crate::faults::atomic_write(path, Path::new(&tmp), snapshot_json(snapshot).as_bytes())
    };
    let result = write().map_err(|e| PersistError::from(e).at(path));
    if sink.is_enabled() {
        sink.observe_since(chatfuzz_telemetry::names::PERSIST_WRITE_US, span);
        sink.counter_add(chatfuzz_telemetry::names::PERSIST_WRITES, 1);
    }
    result
}

/// The lineage sibling of `path` at `depth`: the file itself for depth
/// 0, `{path}.1`, `{path}.2`, … for rotated predecessors.
pub fn lineage_path(path: &Path, depth: usize) -> std::path::PathBuf {
    if depth == 0 {
        return path.to_path_buf();
    }
    let mut os = path.as_os_str().to_owned();
    os.push(format!(".{depth}"));
    std::path::PathBuf::from(os)
}

/// [`save_snapshot`] with checkpoint lineage: before the new document
/// is written, the existing one is rotated to `{path}.1`, the previous
/// `{path}.1` to `{path}.2`, and so on, keeping up to `keep` rotated
/// generations (the oldest is renamed over, not deleted early — with
/// `keep = 0` this degrades to a plain overwriting [`save_snapshot`]).
/// A crash anywhere in the rotation leaves a gap at worst;
/// [`load_latest_valid`] scans past gaps.
pub fn save_snapshot_rotated(path: &Path, snapshot: &CampaignSnapshot, keep: usize) -> Result<()> {
    let rotate = |from: std::path::PathBuf, to: std::path::PathBuf| -> Result<()> {
        match std::fs::rename(&from, &to) {
            Ok(()) => Ok(()),
            // Nothing at this depth yet — early in a campaign's life.
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(PersistError::from(e).at(&from)),
        }
    };
    for depth in (1..keep).rev() {
        rotate(lineage_path(path, depth), lineage_path(path, depth + 1))?;
    }
    if keep > 0 {
        rotate(path.to_path_buf(), lineage_path(path, 1))?;
    }
    save_snapshot(path, snapshot)
}

/// What [`load_latest_valid`] found while walking a checkpoint lineage.
/// Everything it had to step over is recorded, because a fleet
/// coordinator surfaces these in its status: a non-zero
/// `checksum_failures` on a healthy disk is worth a human's attention.
#[derive(Debug, Default)]
pub struct Recovery {
    /// The newest loadable snapshot, or `None` when every lineage entry
    /// was missing or bad — the caller falls back to its generation
    /// base.
    pub snapshot: Option<CampaignSnapshot>,
    /// Lineage depth the snapshot came from (0 = the newest file).
    /// Meaningful only when `snapshot` is `Some`.
    pub fallback_depth: usize,
    /// How many entries failed their content checksum.
    pub checksum_failures: usize,
    /// Corrupt/torn files moved aside (their new `*.quarantined` names).
    pub quarantined: Vec<std::path::PathBuf>,
    /// Entries skipped without quarantine, with the error naming why —
    /// version skew and space mismatches are *healthy* files this build
    /// must not destroy.
    pub skipped: Vec<(std::path::PathBuf, PersistError)>,
}

impl Recovery {
    /// A recovery that found `snapshot` directly (for transports whose
    /// checkpoint store is not file-based).
    pub fn found(snapshot: CampaignSnapshot) -> Recovery {
        Recovery { snapshot: Some(snapshot), ..Recovery::default() }
    }

    /// A one-line human summary of what the recovery walked through —
    /// what it landed on, how deep it had to fall back, and every
    /// checksum failure and quarantined corpse along the way. Fleet
    /// transports feed this line into the telemetry event stream so a
    /// recovery is never silently absorbed.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut line = match &self.snapshot {
            Some(snapshot) => format!(
                "recovered tests={} fallback_depth={}",
                snapshot.tests_run(),
                self.fallback_depth
            ),
            None => "no valid checkpoint (fall back to base)".to_string(),
        };
        if self.checksum_failures > 0 {
            let _ = write!(line, " checksum_failures={}", self.checksum_failures);
        }
        if !self.quarantined.is_empty() {
            let names: Vec<String> =
                self.quarantined.iter().map(|p| p.display().to_string()).collect();
            let _ = write!(line, " quarantined=[{}]", names.join(", "));
        }
        if !self.skipped.is_empty() {
            let _ = write!(line, " skipped={}", self.skipped.len());
        }
        line
    }

    /// Folds another recovery (a deeper fallback source, e.g. an older
    /// attempt's lineage) into this one: bookkeeping accumulates, and
    /// the other's snapshot is taken only if this one found none.
    pub fn absorb(&mut self, other: Recovery) {
        self.checksum_failures += other.checksum_failures;
        self.quarantined.extend(other.quarantined);
        self.skipped.extend(other.skipped);
        if self.snapshot.is_none() {
            self.snapshot = other.snapshot;
            self.fallback_depth = other.fallback_depth;
        }
    }
}

/// Deepest lineage entry [`load_latest_valid`] looks for. A crash
/// mid-rotation can leave holes in the sequence, so the scan walks the
/// whole range instead of stopping at the first missing depth.
const MAX_LINEAGE_SCAN: usize = 32;

/// Walks the checkpoint lineage of `path` newest-first and loads the
/// first valid snapshot. Corrupt or torn entries ([`PersistError::Parse`]
/// / [`PersistError::Checksum`] roots) are *quarantined*: renamed to
/// `{file}.quarantined` (never deleted, and never clobbering an earlier
/// quarantined file) so a post-mortem can inspect exactly what the
/// crash left behind. Version-skewed or foreign-space entries are
/// skipped untouched with a named error. Never fails: the worst case is
/// a [`Recovery`] with no snapshot, which callers treat as "resume from
/// the generation base".
pub fn load_latest_valid(path: &Path, space: &Arc<Space>) -> Recovery {
    let sink = chatfuzz_telemetry::global();
    let span = sink.now();
    let recovery = load_latest_valid_inner(path, space);
    if sink.is_enabled() {
        use chatfuzz_telemetry::names;
        sink.observe_since(names::PERSIST_RECOVER_US, span);
        sink.counter_add(names::PERSIST_CHECKSUM_FAILURES, recovery.checksum_failures as u64);
        sink.counter_add(names::PERSIST_QUARANTINED, recovery.quarantined.len() as u64);
        sink.event(
            "recovery",
            vec![
                ("path", path.display().to_string().into()),
                ("summary", recovery.summary().into()),
            ],
        );
    }
    recovery
}

fn load_latest_valid_inner(path: &Path, space: &Arc<Space>) -> Recovery {
    let mut recovery = Recovery::default();
    for depth in 0..=MAX_LINEAGE_SCAN {
        let candidate = lineage_path(path, depth);
        match load_snapshot(&candidate, space) {
            Ok(snapshot) => {
                recovery.snapshot = Some(snapshot);
                recovery.fallback_depth = depth;
                return recovery;
            }
            Err(e) => match e.root() {
                PersistError::Io(io) if io.kind() == io::ErrorKind::NotFound => {}
                PersistError::Parse(_) | PersistError::Checksum { .. } => {
                    if matches!(e.root(), PersistError::Checksum { .. }) {
                        recovery.checksum_failures += 1;
                    }
                    if let Some(parked) = quarantine(&candidate) {
                        recovery.quarantined.push(parked);
                    }
                    recovery.skipped.push((candidate, e));
                }
                _ => recovery.skipped.push((candidate, e)),
            },
        }
    }
    recovery
}

/// Moves a corrupt file to the first free `{file}.quarantined[.N]`
/// name. Returns the parking name, or `None` if the rename failed (the
/// file stays in place; the lineage scan still steps over it).
fn quarantine(path: &Path) -> Option<std::path::PathBuf> {
    for attempt in 0..1000u32 {
        let mut os = path.as_os_str().to_owned();
        os.push(".quarantined");
        if attempt > 0 {
            os.push(format!(".{attempt}"));
        }
        let target = std::path::PathBuf::from(os);
        if target.exists() {
            continue;
        }
        return std::fs::rename(path, &target).ok().map(|()| target);
    }
    None
}

/// Reads and parses a snapshot written by [`save_snapshot`]. See
/// [`parse_snapshot`] for the `space` argument and failure modes; every
/// error is annotated with `path` via [`PersistError::At`] (peel it off
/// with [`PersistError::root`] to decide retry vs abort).
pub fn load_snapshot(path: &Path, space: &Arc<Space>) -> Result<CampaignSnapshot> {
    let text = std::fs::read_to_string(path).map_err(|e| PersistError::from(e).at(path))?;
    parse_snapshot(&text, space).map_err(|e| e.at(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignBuilder, DutFactory, StopCondition};
    use chatfuzz_baselines::{EpsilonGreedy, MutatorConfig, RandomRegression, TheHuzz};
    use chatfuzz_rtl::{BugConfig, Dut, Rocket, RocketConfig};

    fn factory() -> DutFactory {
        Arc::new(|| {
            Box::new(Rocket::new(RocketConfig { bugs: BugConfig::all_on(), ..Default::default() }))
                as Box<dyn Dut>
        })
    }

    fn sample_snapshot() -> CampaignSnapshot {
        let mut campaign = CampaignBuilder::from_factory(factory())
            .batch_size(16)
            .workers(4)
            .generator(TheHuzz::new(MutatorConfig::default()))
            .generator(RandomRegression::new(5, 16))
            .scheduler(EpsilonGreedy::new(3, 0.25))
            .build();
        campaign.run_until(&[StopCondition::Tests(64)]);
        campaign.snapshot()
    }

    #[test]
    fn snapshot_json_round_trips_exactly() {
        let snapshot = sample_snapshot();
        let space = factory()().space().clone();
        let doc = snapshot_json(&snapshot);
        let parsed = parse_snapshot(&doc, &space).expect("parses");
        // Serialising the parsed snapshot reproduces the document byte
        // for byte — nothing was lost or reformatted.
        assert_eq!(snapshot_json(&parsed), doc);
        assert_eq!(parsed.tests_run(), snapshot.tests_run());
        assert_eq!(parsed.coverage_pct(), snapshot.coverage_pct());
        assert_eq!(parsed.scheduler_state(), snapshot.scheduler_state());
        assert_eq!(parsed.coverage().covered_bins(), snapshot.coverage().covered_bins());
    }

    #[test]
    fn parse_rejects_future_schema_versions() {
        let snapshot = sample_snapshot();
        let space = factory()().space().clone();
        // The version gate outranks the checksum: a future writer's
        // document reports as version skew even though this build's
        // checksum no longer matches the edited text.
        let doc =
            snapshot_json(&snapshot).replacen("\"schema_version\":5", "\"schema_version\":999", 1);
        match parse_snapshot(&doc, &space) {
            Err(PersistError::SchemaVersion { found: 999, supported }) => {
                assert_eq!(supported, SCHEMA_VERSION);
            }
            other => panic!("expected schema-version error, got {other:?}"),
        }
    }

    #[test]
    fn checksum_rejects_single_character_corruption() {
        let snapshot = sample_snapshot();
        let space = factory()().space().clone();
        let doc = snapshot_json(&snapshot);
        assert!(doc.starts_with(CHECKSUM_PREFIX), "checksum leads the document");

        // Flip one hex digit inside the coverage bitmap — the JSON stays
        // perfectly well-formed, so only the checksum can catch it.
        let at = doc.find("\"cumulative\":\"").expect("coverage blob") + "\"cumulative\":\"".len();
        let mut bytes = doc.clone().into_bytes();
        bytes[at] = if bytes[at] == b'0' { b'1' } else { b'0' };
        let flipped = String::from_utf8(bytes).expect("still utf8");
        match parse_snapshot(&flipped, &space) {
            Err(PersistError::Checksum { claimed, computed }) => {
                assert_ne!(claimed, computed);
                let msg = PersistError::Checksum { claimed, computed }.to_string();
                assert!(msg.contains(&format!("{claimed:016x}")), "claimed hash in: {msg}");
                assert!(msg.contains(&format!("{computed:016x}")), "computed hash in: {msg}");
            }
            other => panic!("expected checksum error, got {other:?}"),
        }

        // A v5 document stripped of its checksum is rejected too.
        let bare = payload_json(&snapshot);
        assert!(parse_snapshot(&bare, &space).is_err(), "v5 without checksum");
    }

    #[test]
    fn v4_documents_without_checksums_still_load() {
        let snapshot = sample_snapshot();
        let space = factory()().space().clone();
        // A v4 document is exactly the v5 payload (no checksum field)
        // with the old version stamp — the schema changed nothing else.
        let v4 =
            payload_json(&snapshot).replacen("\"schema_version\":5", "\"schema_version\":4", 1);
        let parsed = parse_snapshot(&v4, &space).expect("v4 loads");
        // Re-serialising writes the modern checksummed v5 form.
        assert_eq!(snapshot_json(&parsed), snapshot_json(&snapshot));
    }

    #[test]
    fn checksum_valid_but_schema_stale_is_a_named_version_error() {
        let snapshot = sample_snapshot();
        let space = factory()().space().clone();
        let stale = attach_checksum(&payload_json(&snapshot).replacen(
            "\"schema_version\":5",
            "\"schema_version\":3",
            1,
        ));
        match parse_snapshot(&stale, &space) {
            Err(PersistError::SchemaVersion { found: 3, supported }) => {
                assert_eq!(supported, SCHEMA_VERSION);
            }
            other => panic!("expected schema-version error, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_wrong_space() {
        let snapshot = sample_snapshot();
        let boom = Arc::new(|| {
            Box::new(chatfuzz_rtl::Boom::new(chatfuzz_rtl::BoomConfig::default())) as Box<dyn Dut>
        });
        let space = boom().space().clone();
        match parse_snapshot(&snapshot_json(&snapshot), &space) {
            Err(PersistError::SpaceMismatch { .. }) => {}
            other => panic!("expected space-mismatch error, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_corrupt_documents() {
        let space = factory()().space().clone();
        for bad in
            ["", "{", "[1,2", "{\"schema_version\":4}", "{\"schema_version\":\"one\"}", "nullnull"]
        {
            assert!(parse_snapshot(bad, &space).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn load_errors_carry_the_path_and_a_matchable_root_cause() {
        let dir = std::env::temp_dir().join(format!("chatfuzz-persist-at-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create dir");
        let space = factory()().space().clone();

        // Missing file: io root cause (the "poll again" case), located.
        let missing = dir.join("missing.json");
        let err = load_snapshot(&missing, &space).expect_err("missing file");
        assert!(matches!(err.root(), PersistError::Io(e) if e.kind() == io::ErrorKind::NotFound));
        assert!(err.to_string().contains("missing.json"), "path in message: {err}");

        // Truncated document: parse root cause (the "retry" case).
        let truncated = dir.join("truncated.json");
        let doc = snapshot_json(&sample_snapshot());
        std::fs::write(&truncated, &doc[..doc.len() / 2]).expect("write");
        let err = load_snapshot(&truncated, &space).expect_err("truncated file");
        assert!(matches!(err.root(), PersistError::Parse(_)), "got {err:?}");
        assert!(err.to_string().contains("truncated.json"));

        // Version skew: permanent, distinguishable, and fully described.
        let skewed = dir.join("skewed.json");
        std::fs::write(&skewed, doc.replacen("\"schema_version\":5", "\"schema_version\":999", 1))
            .expect("write");
        let err = load_snapshot(&skewed, &space).expect_err("skewed file");
        assert!(matches!(
            err.root(),
            PersistError::SchemaVersion { found: 999, supported: SCHEMA_VERSION }
        ));
        let msg = err.to_string();
        assert!(
            msg.contains("skewed.json") && msg.contains("999") && msg.contains("version 5"),
            "found-vs-expected version in message: {msg}"
        );

        // In-place corruption: checksum root cause, located.
        let rotted = dir.join("rotted.json");
        let mut bytes = doc.clone().into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] = if bytes[mid] == b'0' { b'1' } else { b'0' };
        std::fs::write(&rotted, &bytes).expect("write");
        let err = load_snapshot(&rotted, &space).expect_err("rotted file");
        assert!(
            matches!(err.root(), PersistError::Checksum { .. } | PersistError::Parse(_)),
            "corruption surfaces as checksum or parse, got {err:?}"
        );
        assert!(err.to_string().contains("rotted.json"));

        // Save failures carry the path too: the parent "directory" here
        // is a regular file, so the write cannot land.
        let blocked = dir.join("blocker");
        std::fs::write(&blocked, b"not a directory").expect("write");
        let err =
            save_snapshot(&blocked.join("x.json"), &sample_snapshot()).expect_err("blocked save");
        assert!(matches!(err.root(), PersistError::Io(_)));
        assert!(err.to_string().contains("x.json"), "path in message: {err}");

        // Foreign design: fingerprint details survive the annotation.
        let boom = chatfuzz_rtl::Boom::new(chatfuzz_rtl::BoomConfig::default());
        let boom_space = boom.space().clone();
        let foreign = dir.join("foreign.json");
        std::fs::write(&foreign, &doc).expect("write");
        let err = load_snapshot(&foreign, &boom_space).expect_err("foreign space");
        match err.root() {
            PersistError::SpaceMismatch { found, expected } => {
                let msg = err.to_string();
                assert!(msg.contains("foreign.json"));
                assert!(msg.contains(&format!("{found:#018x}")));
                assert!(msg.contains(&format!("{expected:#018x}")));
            }
            other => panic!("expected space mismatch, got {other:?}"),
        }

        // `at` is idempotent: re-annotating keeps the original location.
        let err = PersistError::Parse("x".into()).at(Path::new("a")).at(Path::new("b"));
        assert!(err.to_string().contains('a') && !err.to_string().contains('b'));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn saved_snapshot_loads_and_resumes() {
        let dir = std::env::temp_dir().join("chatfuzz-persist-unit");
        let path = dir.join("deep/nested/snapshot.json");
        let _ = std::fs::remove_dir_all(&dir);

        let snapshot = sample_snapshot();
        save_snapshot(&path, &snapshot).expect("save");
        let space = factory()().space().clone();
        let loaded = load_snapshot(&path, &space).expect("load");
        assert_eq!(snapshot_json(&loaded), snapshot_json(&snapshot));

        // The loaded snapshot is accepted by the builder's resume path.
        let mut campaign = CampaignBuilder::from_factory(factory())
            .batch_size(16)
            .workers(2)
            .generator(TheHuzz::new(MutatorConfig::default()))
            .generator(RandomRegression::new(5, 16))
            .scheduler(EpsilonGreedy::new(3, 0.25))
            .resume(loaded)
            .build();
        assert_eq!(campaign.tests_run(), 64);
        let report = campaign.run_until(&[StopCondition::Tests(96)]);
        assert_eq!(report.tests_run, 96);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatch_examples_round_trip_every_variant() {
        use chatfuzz_softcore::trace::ExitReason;
        let samples = vec![
            Mismatch::ExitDivergence {
                golden: ExitReason::Wfi,
                dut: ExitReason::UnhandledTrap(Exception::Ecall { from: PrivLevel::Supervisor }),
            },
            Mismatch::ExitDivergence {
                golden: ExitReason::ToHost(u64::MAX),
                dut: ExitReason::TrapStorm,
            },
            Mismatch::ExitDivergence {
                golden: ExitReason::BudgetExhausted,
                dut: ExitReason::UnhandledTrap(Exception::IllegalInstr { word: 0xdead_beef }),
            },
            Mismatch::LengthDivergence { golden: 1, dut: 2 },
            Mismatch::PcDivergence { index: 3, golden_pc: u64::MAX, dut_pc: 0 },
            Mismatch::WordDivergence { index: 1, pc: 0x8000_0000, golden_word: 1, dut_word: 2 },
            Mismatch::RdWriteDivergence {
                index: 0,
                pc: 0x8000_0004,
                word: 0x13,
                golden: Some((Reg::X0, u64::MAX)),
                dut: None,
            },
            Mismatch::TrapDivergence {
                index: 9,
                pc: 0x8000_0008,
                golden_cause: Some(4),
                dut_cause: None,
            },
            Mismatch::MemDivergence { index: 7, pc: 0x8000_000c },
        ];
        for m in samples {
            let mut w = JsonWriter::new();
            write_mismatch(&mut w, &m);
            let doc = w.finish();
            let parsed = read_mismatch(&parse_json(&doc).unwrap()).unwrap();
            assert_eq!(parsed, m, "round trip of {doc}");
        }
    }

    #[test]
    fn stop_conditions_round_trip() {
        for stop in [
            None,
            Some(StopCondition::Tests(7)),
            Some(StopCondition::SimCycles(u64::MAX)),
            Some(StopCondition::WallClock(Duration::from_millis(1500))),
            Some(StopCondition::CoveragePct(33.25)),
            Some(StopCondition::Plateau(4)),
        ] {
            let mut w = JsonWriter::new();
            w.open('{');
            write_stop(&mut w, "stopped_by", stop);
            w.close('}');
            let doc = w.finish();
            let parsed = read_stop(parse_json(&doc).unwrap().get("stopped_by").unwrap()).unwrap();
            assert_eq!(parsed, stop, "round trip of {doc}");
        }
    }

    #[test]
    fn hex_blobs_round_trip() {
        let words = vec![0, u64::MAX, 0x0123_4567_89ab_cdef];
        assert_eq!(hex_to_words(&words_to_hex(&words)).unwrap(), words);
        assert!(hex_to_words("123").is_err(), "odd length");
        assert!(hex_to_words("zzzzzzzzzzzzzzzz").is_err(), "non-hex");
    }

    #[test]
    fn u64_precision_survives_the_number_path() {
        // 2^63 + 1 is not representable as f64; the textual number path
        // must still round-trip it exactly.
        let doc = format!("{{\"v\":{}}}", (1u64 << 63) + 1);
        let parsed = parse_json(&doc).unwrap();
        assert_eq!(parsed.get("v").unwrap().as_u64("v").unwrap(), (1u64 << 63) + 1);
    }

    /// Three snapshots of the same campaign at growing budgets — a
    /// miniature checkpoint history with distinguishable documents.
    fn snapshot_series() -> Vec<CampaignSnapshot> {
        let mut campaign = CampaignBuilder::from_factory(factory())
            .batch_size(16)
            .workers(2)
            .generator(RandomRegression::new(5, 16))
            .build();
        [32, 64, 96]
            .iter()
            .map(|&budget| {
                campaign.run_until(&[StopCondition::Tests(budget)]);
                campaign.snapshot()
            })
            .collect()
    }

    #[test]
    fn rotation_keeps_a_bounded_lineage_newest_first() {
        let dir = std::env::temp_dir().join(format!("chatfuzz-lineage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("ckpt.json");
        let series = snapshot_series();
        for snapshot in &series {
            save_snapshot_rotated(&path, snapshot, 2).expect("save");
        }
        // Newest at the path, predecessors behind it, depth capped at 2.
        for (depth, expected) in [(0, &series[2]), (1, &series[1]), (2, &series[0])] {
            let text = std::fs::read_to_string(lineage_path(&path, depth)).expect("read");
            assert_eq!(text, snapshot_json(expected), "depth {depth}");
        }
        assert!(!lineage_path(&path, 3).exists(), "lineage bounded by keep");

        // A healthy lineage recovers depth 0 and reports nothing amiss.
        let space = factory()().space().clone();
        let recovery = load_latest_valid(&path, &space);
        assert_eq!(recovery.fallback_depth, 0);
        assert_eq!(snapshot_json(&recovery.snapshot.expect("found")), snapshot_json(&series[2]));
        assert!(recovery.quarantined.is_empty() && recovery.skipped.is_empty());
        assert_eq!(recovery.checksum_failures, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_falls_back_past_corrupt_entries_and_quarantines_them() {
        let dir = std::env::temp_dir().join(format!("chatfuzz-fallback-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("ckpt.json");
        let series = snapshot_series();
        for snapshot in &series {
            save_snapshot_rotated(&path, snapshot, 2).expect("save");
        }
        // Tear the newest entry and bit-flip the next: one parse
        // casualty, one checksum casualty.
        let newest = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &newest[..newest.len() / 3]).expect("tear");
        let older = std::fs::read_to_string(lineage_path(&path, 1)).expect("read");
        let mut bytes = older.into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] = if bytes[mid] == b'0' { b'1' } else { b'0' };
        std::fs::write(lineage_path(&path, 1), &bytes).expect("flip");

        let space = factory()().space().clone();
        let recovery = load_latest_valid(&path, &space);
        assert_eq!(recovery.fallback_depth, 2, "fell back to the oldest entry");
        assert_eq!(snapshot_json(&recovery.snapshot.expect("found")), snapshot_json(&series[0]));
        assert_eq!(recovery.checksum_failures, 1);
        assert_eq!(recovery.quarantined.len(), 2, "both bad files parked");
        for parked in &recovery.quarantined {
            assert!(parked.exists(), "quarantined file kept: {}", parked.display());
        }
        assert!(!path.exists(), "torn file moved aside, not left in place");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_with_every_entry_corrupt_reports_no_snapshot() {
        let dir = std::env::temp_dir().join(format!("chatfuzz-allbad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("ckpt.json");
        let series = snapshot_series();
        for snapshot in &series {
            save_snapshot_rotated(&path, snapshot, 2).expect("save");
        }
        for depth in 0..=2 {
            std::fs::write(lineage_path(&path, depth), b"{\"torn").expect("corrupt");
        }
        let space = factory()().space().clone();
        let recovery = load_latest_valid(&path, &space);
        assert!(recovery.snapshot.is_none(), "caller falls back to the generation base");
        assert_eq!(recovery.quarantined.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_stale_entries_are_skipped_with_a_named_error_not_quarantined() {
        let dir = std::env::temp_dir().join(format!("chatfuzz-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("ckpt.json");
        let series = snapshot_series();
        for snapshot in &series {
            save_snapshot_rotated(&path, snapshot, 2).expect("save");
        }
        // Replace the newest entry with a checksum-valid document from a
        // schema this build no longer reads — a healthy file, not
        // corruption. `path.1` still holds `series[1]`.
        let stale = attach_checksum(&payload_json(&series[2]).replacen(
            "\"schema_version\":5",
            "\"schema_version\":3",
            1,
        ));
        std::fs::write(&path, &stale).expect("write");

        let space = factory()().space().clone();
        let recovery = load_latest_valid(&path, &space);
        assert_eq!(recovery.fallback_depth, 1, "stale entry stepped over");
        assert_eq!(snapshot_json(&recovery.snapshot.expect("found")), snapshot_json(&series[1]));
        assert!(recovery.quarantined.is_empty(), "healthy files are never renamed");
        assert!(path.exists(), "stale file left exactly where it was");
        let (skipped_path, skipped_err) = &recovery.skipped[0];
        assert_eq!(skipped_path, &path);
        assert!(
            matches!(skipped_err.root(), PersistError::SchemaVersion { found: 3, .. }),
            "named version error, got {skipped_err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_never_clobbers_an_earlier_quarantined_file() {
        let dir = std::env::temp_dir().join(format!("chatfuzz-noclobber-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create dir");
        let path = dir.join("ckpt.json");
        let space = factory()().space().clone();

        // A previous recovery already parked one corpse.
        let mut first_quarantined = path.as_os_str().to_owned();
        first_quarantined.push(".quarantined");
        let first_quarantined = std::path::PathBuf::from(first_quarantined);
        std::fs::write(&first_quarantined, b"earlier corpse").expect("write");

        std::fs::write(&path, b"{\"fresh corpse").expect("write");
        let recovery = load_latest_valid(&path, &space);
        assert!(recovery.snapshot.is_none());
        assert_eq!(recovery.quarantined.len(), 1);
        assert_ne!(recovery.quarantined[0], first_quarantined, "picked a fresh name");
        assert_eq!(
            std::fs::read(&first_quarantined).expect("read"),
            b"earlier corpse",
            "existing quarantined file untouched"
        );
        assert_eq!(std::fs::read(&recovery.quarantined[0]).expect("read"), b"{\"fresh corpse");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_absorb_accumulates_and_prefers_the_earlier_snapshot() {
        let series = snapshot_series();
        let mut primary =
            Recovery { checksum_failures: 1, quarantined: vec!["a".into()], ..Recovery::default() };
        let secondary = Recovery {
            snapshot: Some(series[0].clone()),
            fallback_depth: 2,
            checksum_failures: 2,
            quarantined: vec!["b".into()],
            skipped: vec![("c".into(), PersistError::Parse("x".into()))],
        };
        primary.absorb(secondary);
        assert_eq!(primary.fallback_depth, 2);
        assert!(primary.snapshot.is_some());
        assert_eq!(primary.checksum_failures, 3);
        assert_eq!(primary.quarantined.len(), 2);
        assert_eq!(primary.skipped.len(), 1);

        // A recovery that already found a snapshot keeps it.
        let mut found = Recovery::found(series[1].clone());
        found.absorb(Recovery::found(series[0].clone()));
        assert_eq!(snapshot_json(&found.snapshot.expect("kept")), snapshot_json(&series[1]));
    }
}
