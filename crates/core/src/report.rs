//! Human- and machine-readable rendering of campaign results.
//!
//! The experiment harness and the examples both need the same few views of
//! a [`CampaignReport`]: a coverage-over-time CSV, a markdown summary, a
//! compact one-line digest for logs, and a machine-readable JSON document
//! ([`json`]). Keeping them here (instead of in each binary) makes report
//! formats part of the library contract.
//!
//! JSON is emitted by a small writer in this module rather than serde:
//! the workspace builds offline (see `vendor/README.md`), and the report
//! shape is small and stable enough that a hand-rolled emitter with
//! proper string escaping is the lighter dependency.

use std::fmt::Write as _;

use crate::campaign::CampaignReport;

/// Renders the coverage history as CSV
/// (`tests,covered_bins,coverage_pct,sim_cycles,wall_s`).
pub fn history_csv(report: &CampaignReport) -> String {
    let mut out = String::from("tests,covered_bins,coverage_pct,sim_cycles,wall_s\n");
    for p in &report.history {
        let _ = writeln!(
            out,
            "{},{},{:.4},{},{:.3}",
            p.tests,
            p.covered_bins,
            p.coverage_pct,
            p.sim_cycles,
            p.wall.as_secs_f64()
        );
    }
    out
}

/// Renders a full markdown summary: headline, history table, unique
/// mismatches and classified defects.
pub fn markdown_summary(report: &CampaignReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Campaign: `{}` vs `{}`\n", report.generator, report.dut);
    let _ = writeln!(
        out,
        "- tests: **{}**  coverage: **{:.2}%**  sim-cycles: {}  wall: {:.1}s",
        report.tests_run,
        report.final_coverage_pct,
        report.total_cycles,
        report.wall.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "- mismatches: {} raw, {} unique, {} classified defects\n",
        report.raw_mismatches,
        report.unique_mismatches.len(),
        report.bugs.len()
    );
    let _ = writeln!(out, "## Coverage over time\n");
    let _ = writeln!(out, "| tests | coverage % | sim cycles |");
    let _ = writeln!(out, "|---|---|---|");
    for p in &report.history {
        let _ = writeln!(out, "| {} | {:.2} | {} |", p.tests, p.coverage_pct, p.sim_cycles);
    }
    if report.generator_stats.len() > 1 {
        let _ = writeln!(out, "\n## Generator schedule\n");
        let _ = writeln!(out, "| generator | batches | tests | new bins | bins/test |");
        let _ = writeln!(out, "|---|---|---|---|---|");
        for s in &report.generator_stats {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {:.3} |",
                s.name,
                s.batches,
                s.tests,
                s.new_bins,
                s.reward_rate()
            );
        }
    }
    if !report.unique_mismatches.is_empty() {
        let _ = writeln!(out, "\n## Unique mismatches\n");
        let _ = writeln!(out, "| signature | count | classified |");
        let _ = writeln!(out, "|---|---|---|");
        for u in &report.unique_mismatches {
            let bug = u.bug.map(|b| b.to_string()).unwrap_or_else(|| "-".into());
            let _ = writeln!(out, "| `{}` | {} | {} |", u.signature, u.count, bug);
        }
    }
    if !report.bugs.is_empty() {
        let _ = writeln!(out, "\n## Defects found\n");
        for b in &report.bugs {
            let _ = writeln!(out, "- {b}");
        }
    }
    out
}

/// One-line digest for progress logs.
pub fn digest(report: &CampaignReport) -> String {
    format!(
        "{}@{}: {:.2}% in {} tests ({} raw / {} unique mismatches, {} defects)",
        report.generator,
        report.dut,
        report.final_coverage_pct,
        report.tests_run,
        report.raw_mismatches,
        report.unique_mismatches.len(),
        report.bugs.len()
    )
}

/// Serialises the whole report as a JSON document: headline numbers,
/// exact coverage history, per-generator scheduling stats, and the
/// clustered mismatch report. The single code path every bench binary
/// uses for machine-readable output.
pub fn json(report: &CampaignReport) -> String {
    render_json(report, true)
}

/// [`json`] minus every wall-clock field — a canonical digest that is
/// byte-identical across runs that did the same *work*, regardless of
/// machine speed or scheduling. The cross-process resume and sharding
/// tests compare campaigns with this.
pub fn json_canonical(report: &CampaignReport) -> String {
    render_json(report, false)
}

fn render_json(report: &CampaignReport, include_wall: bool) -> String {
    let mut w = JsonWriter::new();
    w.open('{');
    w.field_str("generator", &report.generator);
    w.field_str("dut", &report.dut);
    w.field_f64("final_coverage_pct", report.final_coverage_pct);
    w.field_u64("tests_run", report.tests_run as u64);
    w.field_u64("batches_run", report.batches_run as u64);
    w.field_u64("total_cycles", report.total_cycles);
    if include_wall {
        w.field_f64("wall_s", report.wall.as_secs_f64());
    }
    w.field_u64("raw_mismatches", report.raw_mismatches as u64);
    match &report.stopped_by {
        Some(stop) => w.field_str("stopped_by", &format!("{stop:?}")),
        None => w.field_raw("stopped_by", "null"),
    }

    w.key("history");
    w.open('[');
    for p in &report.history {
        w.open('{');
        w.field_u64("tests", p.tests as u64);
        w.field_u64("covered_bins", p.covered_bins as u64);
        w.field_f64("coverage_pct", p.coverage_pct);
        w.field_u64("sim_cycles", p.sim_cycles);
        if include_wall {
            w.field_f64("wall_s", p.wall.as_secs_f64());
        }
        w.close('}');
    }
    w.close(']');

    w.key("generator_stats");
    w.open('[');
    for s in &report.generator_stats {
        w.open('{');
        w.field_str("name", &s.name);
        w.field_u64("batches", s.batches as u64);
        w.field_u64("tests", s.tests as u64);
        w.field_u64("new_bins", s.new_bins as u64);
        w.field_u64("cycles", s.cycles);
        w.field_f64("bins_per_test", s.reward_rate());
        w.close('}');
    }
    w.close(']');

    w.key("unique_mismatches");
    w.open('[');
    for u in &report.unique_mismatches {
        w.open('{');
        w.field_str("signature", &u.signature);
        w.field_u64("count", u.count as u64);
        match u.bug {
            Some(bug) => w.field_str("bug", &bug.to_string()),
            None => w.field_raw("bug", "null"),
        }
        w.close('}');
    }
    w.close(']');

    w.key("bugs");
    w.open('[');
    for b in &report.bugs {
        w.value_str(&b.to_string());
    }
    w.close(']');

    w.close('}');
    w.finish()
}

/// Minimal JSON emitter: tracks comma placement, escapes strings, and
/// renders floats round-trippably. Shared with [`crate::persist`], which
/// serialises campaign snapshots through the same seam.
pub(crate) struct JsonWriter {
    out: String,
    /// Whether the current aggregate already has an element.
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    pub(crate) fn new() -> JsonWriter {
        JsonWriter { out: String::new(), needs_comma: vec![false] }
    }

    pub(crate) fn elem(&mut self) {
        if let Some(flag) = self.needs_comma.last_mut() {
            if *flag {
                self.out.push(',');
            }
            *flag = true;
        }
    }

    pub(crate) fn open(&mut self, bracket: char) {
        self.elem();
        self.out.push(bracket);
        self.needs_comma.push(false);
    }

    pub(crate) fn close(&mut self, bracket: char) {
        self.needs_comma.pop();
        self.out.push(bracket);
    }

    pub(crate) fn key(&mut self, key: &str) {
        self.elem();
        self.push_escaped(key);
        self.out.push(':');
        // The upcoming value belongs to this key, not a new element.
        if let Some(flag) = self.needs_comma.last_mut() {
            *flag = false;
        }
    }

    pub(crate) fn field_str(&mut self, key: &str, value: &str) {
        self.key(key);
        self.value_str(value);
        self.mark_elem();
    }

    pub(crate) fn field_u64(&mut self, key: &str, value: u64) {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self.mark_elem();
    }

    pub(crate) fn field_f64(&mut self, key: &str, value: f64) {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.out, "{value}");
        } else {
            self.out.push_str("null");
        }
        self.mark_elem();
    }

    pub(crate) fn field_raw(&mut self, key: &str, raw: &str) {
        self.key(key);
        self.out.push_str(raw);
        self.mark_elem();
    }

    pub(crate) fn value_str(&mut self, value: &str) {
        self.elem();
        self.push_escaped(value);
    }

    pub(crate) fn value_u64(&mut self, value: u64) {
        self.elem();
        let _ = write!(self.out, "{value}");
    }

    pub(crate) fn value_f64(&mut self, value: f64) {
        self.elem();
        if value.is_finite() {
            let _ = write!(self.out, "{value}");
        } else {
            self.out.push_str("null");
        }
    }

    /// A raw array element (e.g. `null` for an absent optional entry).
    pub(crate) fn value_raw(&mut self, raw: &str) {
        self.elem();
        self.out.push_str(raw);
    }

    pub(crate) fn mark_elem(&mut self) {
        if let Some(flag) = self.needs_comma.last_mut() {
            *flag = true;
        }
    }

    pub(crate) fn push_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    pub(crate) fn finish(self) -> String {
        debug_assert_eq!(self.needs_comma.len(), 1, "unbalanced JSON aggregates");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignBuilder, StopCondition};
    use chatfuzz_baselines::{MutatorConfig, RandomRegression, TheHuzz};
    use chatfuzz_rtl::{Dut, Rocket, RocketConfig};

    fn small_report() -> CampaignReport {
        let mut campaign =
            CampaignBuilder::new(|| Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>)
                .batch_size(16)
                .workers(2)
                .generator(TheHuzz::new(MutatorConfig::default()))
                .build();
        campaign.run_until(&[StopCondition::Tests(32)])
    }

    #[test]
    fn csv_has_header_and_one_row_per_point() {
        let report = small_report();
        let csv = history_csv(&report);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("tests,covered_bins"));
        assert_eq!(lines.len(), report.history.len() + 1);
        // Every data row parses back.
        for line in &lines[1..] {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 5);
            cols[0].parse::<usize>().unwrap();
            cols[2].parse::<f64>().unwrap();
        }
    }

    #[test]
    fn markdown_contains_headline_and_mismatch_sections() {
        let report = small_report();
        let md = markdown_summary(&report);
        assert!(md.contains("# Campaign: `thehuzz` vs `rocket`"));
        assert!(md.contains("## Coverage over time"));
        if report.raw_mismatches > 0 {
            assert!(md.contains("## Unique mismatches"));
        }
    }

    #[test]
    fn digest_is_single_line() {
        let report = small_report();
        let d = digest(&report);
        assert!(!d.contains('\n'));
        assert!(d.contains("thehuzz@rocket"));
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let report = small_report();
        let doc = json(&report);
        // Structural sanity without a parser: balanced brackets outside
        // strings, expected keys present.
        let mut depth = 0i32;
        let mut in_string = false;
        let mut escaped = false;
        for c in doc.chars() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' if in_string => escaped = true,
                '"' => in_string = !in_string,
                '{' | '[' if !in_string => depth += 1,
                '}' | ']' if !in_string => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced JSON: {doc}");
        }
        assert_eq!(depth, 0, "unbalanced JSON: {doc}");
        assert!(!in_string, "unterminated string: {doc}");
        for key in [
            "\"generator\"",
            "\"dut\"",
            "\"final_coverage_pct\"",
            "\"history\"",
            "\"generator_stats\"",
            "\"unique_mismatches\"",
            "\"bugs\"",
            "\"stopped_by\"",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
        assert!(doc.contains(&format!("\"tests_run\":{}", report.tests_run)));
        // History array has one object per point.
        assert_eq!(doc.matches("\"covered_bins\":").count(), report.history.len());
        // No trailing commas.
        assert!(!doc.contains(",}") && !doc.contains(",]"), "trailing comma: {doc}");
    }

    #[test]
    fn json_escapes_strings() {
        let mut report = small_report();
        report.generator = "we\"ird\\name\nwith\tctrl\u{1}".into();
        let doc = json(&report);
        assert!(doc.contains(r#""we\"ird\\name\nwith\tctrl\u0001""#), "{doc}");
    }

    #[test]
    fn multi_generator_json_lists_all_stats() {
        let mut campaign =
            CampaignBuilder::new(|| Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>)
                .batch_size(8)
                .workers(2)
                .detect_mismatches(false)
                .generator(TheHuzz::new(MutatorConfig::default()))
                .generator(RandomRegression::new(3, 16))
                .build();
        let report = campaign.run_until(&[StopCondition::Tests(32)]);
        let doc = json(&report);
        assert!(doc.contains("\"name\":\"thehuzz\""));
        assert!(doc.contains("\"name\":\"random\""));
        let md = markdown_summary(&report);
        assert!(md.contains("## Generator schedule"));
    }
}
