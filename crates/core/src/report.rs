//! Human- and machine-readable rendering of campaign results.
//!
//! The experiment harness and the examples both need the same few views of
//! a [`CampaignReport`]: a coverage-over-time CSV, a markdown summary, and
//! a compact one-line digest for logs. Keeping them here (instead of in
//! each binary) makes report formats part of the library contract.

use std::fmt::Write as _;

use crate::fuzz::CampaignReport;

/// Renders the coverage history as CSV
/// (`tests,covered_bins,coverage_pct,sim_cycles,wall_s`).
pub fn history_csv(report: &CampaignReport) -> String {
    let mut out = String::from("tests,covered_bins,coverage_pct,sim_cycles,wall_s\n");
    for p in &report.history {
        let _ = writeln!(
            out,
            "{},{},{:.4},{},{:.3}",
            p.tests,
            p.covered_bins,
            p.coverage_pct,
            p.sim_cycles,
            p.wall.as_secs_f64()
        );
    }
    out
}

/// Renders a full markdown summary: headline, history table, unique
/// mismatches and classified defects.
pub fn markdown_summary(report: &CampaignReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Campaign: `{}` vs `{}`\n", report.generator, report.dut);
    let _ = writeln!(
        out,
        "- tests: **{}**  coverage: **{:.2}%**  sim-cycles: {}  wall: {:.1}s",
        report.tests_run,
        report.final_coverage_pct,
        report.total_cycles,
        report.wall.as_secs_f64()
    );
    let _ = writeln!(
        out,
        "- mismatches: {} raw, {} unique, {} classified defects\n",
        report.raw_mismatches,
        report.unique_mismatches.len(),
        report.bugs.len()
    );
    let _ = writeln!(out, "## Coverage over time\n");
    let _ = writeln!(out, "| tests | coverage % | sim cycles |");
    let _ = writeln!(out, "|---|---|---|");
    for p in &report.history {
        let _ = writeln!(out, "| {} | {:.2} | {} |", p.tests, p.coverage_pct, p.sim_cycles);
    }
    if !report.unique_mismatches.is_empty() {
        let _ = writeln!(out, "\n## Unique mismatches\n");
        let _ = writeln!(out, "| signature | count | classified |");
        let _ = writeln!(out, "|---|---|---|");
        for u in &report.unique_mismatches {
            let bug = u.bug.map(|b| b.to_string()).unwrap_or_else(|| "-".into());
            let _ = writeln!(out, "| `{}` | {} | {} |", u.signature, u.count, bug);
        }
    }
    if !report.bugs.is_empty() {
        let _ = writeln!(out, "\n## Defects found\n");
        for b in &report.bugs {
            let _ = writeln!(out, "- {b}");
        }
    }
    out
}

/// One-line digest for progress logs.
pub fn digest(report: &CampaignReport) -> String {
    format!(
        "{}@{}: {:.2}% in {} tests ({} raw / {} unique mismatches, {} defects)",
        report.generator,
        report.dut,
        report.final_coverage_pct,
        report.tests_run,
        report.raw_mismatches,
        report.unique_mismatches.len(),
        report.bugs.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::{run_campaign, CampaignConfig};
    use chatfuzz_baselines::{MutatorConfig, TheHuzz};
    use chatfuzz_rtl::{Dut, Rocket, RocketConfig};

    fn small_report() -> CampaignReport {
        let mut generator = TheHuzz::new(MutatorConfig::default());
        let factory = || Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>;
        let cfg = CampaignConfig {
            total_tests: 32,
            batch_size: 16,
            workers: 2,
            history_every: 16,
            ..Default::default()
        };
        run_campaign(&mut generator, &factory, &cfg)
    }

    #[test]
    fn csv_has_header_and_one_row_per_point() {
        let report = small_report();
        let csv = history_csv(&report);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("tests,covered_bins"));
        assert_eq!(lines.len(), report.history.len() + 1);
        // Every data row parses back.
        for line in &lines[1..] {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 5);
            cols[0].parse::<usize>().unwrap();
            cols[2].parse::<f64>().unwrap();
        }
    }

    #[test]
    fn markdown_contains_headline_and_mismatch_sections() {
        let report = small_report();
        let md = markdown_summary(&report);
        assert!(md.contains("# Campaign: `thehuzz` vs `rocket`"));
        assert!(md.contains("## Coverage over time"));
        if report.raw_mismatches > 0 {
            assert!(md.contains("## Unique mismatches"));
        }
    }

    #[test]
    fn digest_is_single_line() {
        let report = small_report();
        let d = digest(&report);
        assert!(!d.contains('\n'));
        assert!(d.contains("thehuzz@rocket"));
    }
}
