//! The fuzzing loop (paper Fig. 1a): batched generation, parallel RTL +
//! ISA simulation (the paper uses ten VCS instances; we use worker
//! threads), coverage scoring, generator feedback, and mismatch detection.

use std::time::{Duration, Instant};

use chatfuzz_baselines::{Feedback, InputGenerator};
use chatfuzz_coverage::{Calculator, CovMap, PointKind};
use chatfuzz_rtl::{Dut, DutRun};
use chatfuzz_softcore::trace::Trace;
use chatfuzz_softcore::{SoftCore, SoftCoreConfig};
use crossbeam::channel;

use crate::harness::{wrap, HarnessConfig};
use crate::mismatch::{diff_traces, KnownBug, MismatchLog, UniqueMismatch};

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Total test inputs to run.
    pub total_tests: usize,
    /// Inputs per batch (one Coverage-Calculator batch).
    pub batch_size: usize,
    /// Parallel simulation workers (the paper's "ten instances of VCS").
    pub workers: usize,
    /// Harness wrapped around each input.
    pub harness: HarnessConfig,
    /// Golden-model configuration (budgets must match the DUT's).
    pub golden: SoftCoreConfig,
    /// Run the golden model + mismatch detector.
    pub detect_mismatches: bool,
    /// Record a history point at least every N tests.
    pub history_every: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            total_tests: 512,
            batch_size: 32,
            workers: 10,
            harness: HarnessConfig::default(),
            golden: SoftCoreConfig::default(),
            detect_mismatches: true,
            history_every: 64,
        }
    }
}

/// One coverage-over-time sample.
#[derive(Debug, Clone, Copy)]
pub struct CoveragePoint {
    /// Tests executed so far.
    pub tests: usize,
    /// Cumulative covered bins.
    pub covered_bins: usize,
    /// Cumulative condition coverage percentage.
    pub coverage_pct: f64,
    /// Total simulated DUT cycles so far.
    pub sim_cycles: u64,
    /// Wall-clock since campaign start.
    pub wall: Duration,
}

/// Campaign results.
#[derive(Debug)]
pub struct CampaignReport {
    /// Generator name.
    pub generator: String,
    /// DUT name.
    pub dut: String,
    /// Coverage-over-time history (ends with the final point).
    pub history: Vec<CoveragePoint>,
    /// Final cumulative coverage percentage.
    pub final_coverage_pct: f64,
    /// Tests executed.
    pub tests_run: usize,
    /// Raw mismatch count (before clustering).
    pub raw_mismatches: usize,
    /// Unique mismatch clusters.
    pub unique_mismatches: Vec<UniqueMismatch>,
    /// Known defects evidenced.
    pub bugs: Vec<KnownBug>,
    /// Total simulated DUT cycles.
    pub total_cycles: u64,
    /// Total wall-clock time.
    pub wall: Duration,
}

impl CampaignReport {
    /// Tests needed to first reach `pct` coverage, if ever reached.
    pub fn tests_to_reach(&self, pct: f64) -> Option<usize> {
        self.history.iter().find(|p| p.coverage_pct >= pct).map(|p| p.tests)
    }

    /// Simulated cycles needed to first reach `pct` coverage.
    pub fn cycles_to_reach(&self, pct: f64) -> Option<u64> {
        self.history.iter().find(|p| p.coverage_pct >= pct).map(|p| p.sim_cycles)
    }
}

struct Job {
    index: usize,
    image: Vec<u8>,
}

struct JobResult {
    index: usize,
    run: DutRun,
    golden: Option<Trace>,
}

/// Runs one fuzzing campaign.
///
/// `dut_factory` builds one DUT per worker; all instances must elaborate
/// identical coverage spaces (guaranteed for the deterministic cores in
/// `chatfuzz-rtl`).
///
/// # Panics
///
/// Panics if `workers == 0` or `batch_size == 0`.
pub fn run_campaign(
    generator: &mut dyn InputGenerator,
    dut_factory: &(dyn Fn() -> Box<dyn Dut> + Sync),
    cfg: &CampaignConfig,
) -> CampaignReport {
    assert!(cfg.workers > 0 && cfg.batch_size > 0, "degenerate campaign config");
    let start = Instant::now();
    let probe = dut_factory();
    let space = probe.space().clone();
    let dut_name = probe.name().to_string();
    drop(probe);

    let mut calculator = Calculator::new(&space);
    let mut log = MismatchLog::new();
    let mut history: Vec<CoveragePoint> = Vec::new();
    let mut tests_run = 0usize;
    let mut total_cycles = 0u64;
    let mut last_history_at = 0usize;

    let (job_tx, job_rx) = channel::unbounded::<Job>();
    let (result_tx, result_rx) = channel::unbounded::<JobResult>();

    std::thread::scope(|scope| {
        for _ in 0..cfg.workers {
            let job_rx = job_rx.clone();
            let result_tx = result_tx.clone();
            let golden_cfg = cfg.golden;
            let detect = cfg.detect_mismatches;
            scope.spawn(move || {
                let mut dut = dut_factory();
                let golden = SoftCore::new(golden_cfg);
                while let Ok(job) = job_rx.recv() {
                    let run = dut.run(&job.image);
                    let golden_trace = detect.then(|| golden.run(&job.image));
                    if result_tx
                        .send(JobResult { index: job.index, run, golden: golden_trace })
                        .is_err()
                    {
                        break;
                    }
                }
            });
        }
        // Main loop drives the generator and scores batches.
        while tests_run < cfg.total_tests {
            let n = cfg.batch_size.min(cfg.total_tests - tests_run);
            let batch = generator.next_batch(n);
            for (index, body) in batch.iter().enumerate() {
                let image = wrap(body, cfg.harness);
                job_tx.send(Job { index, image }).expect("workers alive");
            }
            let mut results: Vec<Option<JobResult>> = (0..n).map(|_| None).collect();
            for _ in 0..n {
                let r = result_rx.recv().expect("workers alive");
                let idx = r.index;
                results[idx] = Some(r);
            }
            let mut covs: Vec<CovMap> = Vec::with_capacity(n);
            let mut mux: Vec<usize> = Vec::with_capacity(n);
            for r in results.iter().flatten() {
                total_cycles += r.run.cycles;
                mux.push(r.run.coverage.covered_bins_of_kind(PointKind::MuxSelect));
                if let Some(golden_trace) = &r.golden {
                    log.record(diff_traces(golden_trace, &r.run.trace));
                }
            }
            for r in results.into_iter().flatten() {
                covs.push(r.run.coverage);
            }
            let scores = calculator.score_batch(&covs);
            let feedback: Vec<Feedback> = scores
                .inputs
                .iter()
                .zip(&mux)
                .map(|(s, m)| Feedback {
                    standalone: s.standalone,
                    incremental: s.incremental,
                    mux_covered: *m,
                })
                .collect();
            generator.observe(&batch, &feedback);
            tests_run += n;
            if tests_run - last_history_at >= cfg.history_every || tests_run == cfg.total_tests
            {
                last_history_at = tests_run;
                history.push(CoveragePoint {
                    tests: tests_run,
                    covered_bins: calculator.total_covered(),
                    coverage_pct: calculator.total_percent(),
                    sim_cycles: total_cycles,
                    wall: start.elapsed(),
                });
            }
        }
        drop(job_tx); // release workers
    });

    CampaignReport {
        generator: generator.name().to_string(),
        dut: dut_name,
        final_coverage_pct: calculator.total_percent(),
        history,
        tests_run,
        raw_mismatches: log.raw_count(),
        unique_mismatches: log.unique().into_iter().cloned().collect(),
        bugs: log.bugs_found(),
        total_cycles,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_baselines::{MutatorConfig, RandomRegression, TheHuzz};
    use chatfuzz_rtl::{BugConfig, Rocket, RocketConfig};

    fn rocket_factory(bugs: BugConfig) -> impl Fn() -> Box<dyn Dut> + Sync {
        move || Box::new(Rocket::new(RocketConfig { bugs, ..Default::default() })) as Box<dyn Dut>
    }

    fn small_cfg() -> CampaignConfig {
        CampaignConfig {
            total_tests: 48,
            batch_size: 16,
            workers: 4,
            history_every: 16,
            ..Default::default()
        }
    }

    #[test]
    fn campaign_accumulates_monotone_coverage() {
        let mut generator = TheHuzz::new(MutatorConfig::default());
        let report =
            run_campaign(&mut generator, &rocket_factory(BugConfig::all_on()), &small_cfg());
        assert_eq!(report.tests_run, 48);
        assert!(report.final_coverage_pct > 20.0, "got {}", report.final_coverage_pct);
        assert!(!report.history.is_empty());
        for pair in report.history.windows(2) {
            assert!(pair[1].coverage_pct >= pair[0].coverage_pct, "monotone");
            assert!(pair[1].tests > pair[0].tests);
        }
        assert!(report.total_cycles > 0);
    }

    #[test]
    fn bug_free_rocket_yields_zero_mismatches() {
        let mut generator = TheHuzz::new(MutatorConfig::default());
        let report =
            run_campaign(&mut generator, &rocket_factory(BugConfig::all_off()), &small_cfg());
        assert_eq!(report.raw_mismatches, 0, "no injected bugs, no mismatches");
        assert!(report.bugs.is_empty());
    }

    #[test]
    fn campaign_is_deterministic() {
        let run = || {
            let mut generator = RandomRegression::new(5, 16);
            run_campaign(&mut generator, &rocket_factory(BugConfig::all_on()), &small_cfg())
        };
        let a = run();
        let b = run();
        assert_eq!(a.final_coverage_pct, b.final_coverage_pct);
        assert_eq!(a.raw_mismatches, b.raw_mismatches);
        assert_eq!(a.total_cycles, b.total_cycles);
    }

    #[test]
    fn single_worker_matches_parallel_results() {
        let cfg1 = CampaignConfig { workers: 1, ..small_cfg() };
        let cfg8 = CampaignConfig { workers: 8, ..small_cfg() };
        let mut g1 = RandomRegression::new(5, 16);
        let mut g8 = RandomRegression::new(5, 16);
        let a = run_campaign(&mut g1, &rocket_factory(BugConfig::all_on()), &cfg1);
        let b = run_campaign(&mut g8, &rocket_factory(BugConfig::all_on()), &cfg8);
        assert_eq!(a.final_coverage_pct, b.final_coverage_pct);
        assert_eq!(a.raw_mismatches, b.raw_mismatches);
    }
}
