//! Legacy entry point for the fuzzing loop (paper Fig. 1a).
//!
//! The loop itself lives in [`crate::campaign`] as a resumable session
//! object; this module keeps the original free-function shape as a thin
//! wrapper and re-exports the campaign types under their historical
//! paths. New code should use [`CampaignBuilder`](crate::CampaignBuilder)
//! directly — it adds multi-generator scheduling, observers, stop
//! conditions beyond a test budget, and snapshot/resume.

pub use crate::campaign::{
    CampaignConfig, CampaignReport, CoveragePoint, DutFactory, StopCondition,
};

use chatfuzz_baselines::InputGenerator;

use crate::campaign::CampaignBuilder;

/// Runs one fuzzing campaign to its configured test budget.
///
/// Deprecated shim over [`CampaignBuilder`]; behaviour (batching,
/// scoring, feedback, mismatch detection) is identical to the session
/// API with a single generator and a [`StopCondition::Tests`] budget.
///
/// # Panics
///
/// Panics if `cfg.workers == 0` or `cfg.batch_size == 0`.
pub fn run_campaign(
    generator: &mut dyn InputGenerator,
    dut_factory: &DutFactory,
    cfg: &CampaignConfig,
) -> CampaignReport {
    let mut campaign = CampaignBuilder::from_factory(std::sync::Arc::clone(dut_factory))
        .config(*cfg)
        .generator(generator)
        .build();
    campaign.run_until(&[StopCondition::Tests(cfg.total_tests)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_baselines::{MutatorConfig, RandomRegression, TheHuzz};
    use chatfuzz_rtl::{BugConfig, Dut, Rocket, RocketConfig};
    use std::sync::Arc;

    fn rocket_factory(bugs: BugConfig) -> DutFactory {
        Arc::new(move || {
            Box::new(Rocket::new(RocketConfig { bugs, ..Default::default() })) as Box<dyn Dut>
        })
    }

    fn small_cfg() -> CampaignConfig {
        CampaignConfig {
            total_tests: 48,
            batch_size: 16,
            workers: 4,
            history_every: 16,
            ..Default::default()
        }
    }

    #[test]
    fn campaign_accumulates_monotone_coverage() {
        let mut generator = TheHuzz::new(MutatorConfig::default());
        let report =
            run_campaign(&mut generator, &rocket_factory(BugConfig::all_on()), &small_cfg());
        assert_eq!(report.tests_run, 48);
        assert!(report.final_coverage_pct > 20.0, "got {}", report.final_coverage_pct);
        assert!(!report.history.is_empty());
        for pair in report.history.windows(2) {
            assert!(pair[1].coverage_pct >= pair[0].coverage_pct, "monotone");
            assert!(pair[1].tests > pair[0].tests);
        }
        assert!(report.total_cycles > 0);
    }

    #[test]
    fn bug_free_rocket_yields_zero_mismatches() {
        let mut generator = TheHuzz::new(MutatorConfig::default());
        let report =
            run_campaign(&mut generator, &rocket_factory(BugConfig::all_off()), &small_cfg());
        assert_eq!(report.raw_mismatches, 0, "no injected bugs, no mismatches");
        assert!(report.bugs.is_empty());
    }

    #[test]
    fn campaign_is_deterministic() {
        let run = || {
            let mut generator = RandomRegression::new(5, 16);
            run_campaign(&mut generator, &rocket_factory(BugConfig::all_on()), &small_cfg())
        };
        let a = run();
        let b = run();
        assert_eq!(a.final_coverage_pct, b.final_coverage_pct);
        assert_eq!(a.raw_mismatches, b.raw_mismatches);
        assert_eq!(a.total_cycles, b.total_cycles);
    }

    #[test]
    fn single_worker_matches_parallel_results() {
        let cfg1 = CampaignConfig { workers: 1, ..small_cfg() };
        let cfg8 = CampaignConfig { workers: 8, ..small_cfg() };
        let mut g1 = RandomRegression::new(5, 16);
        let mut g8 = RandomRegression::new(5, 16);
        let a = run_campaign(&mut g1, &rocket_factory(BugConfig::all_on()), &cfg1);
        let b = run_campaign(&mut g8, &rocket_factory(BugConfig::all_on()), &cfg8);
        assert_eq!(a.final_coverage_pct, b.final_coverage_pct);
        assert_eq!(a.raw_mismatches, b.raw_mismatches);
    }
}
