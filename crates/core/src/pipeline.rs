//! The three-step ChatFuzz training pipeline (paper Fig. 1b).
//!
//! 1. **Initial training** — unsupervised LM training on the static corpus
//!    (tokenizer + GPT, `chatfuzz-lm`).
//! 2. **Model language cleanup** — PPO with the deterministic disassembler
//!    reward of Eq. (1): `r = N − 5 · Invalid`.
//! 3. **Model optimisation** — PPO with the coverage reward computed from
//!    RTL-simulation feedback (stand-alone / incremental / total values
//!    from the Coverage Calculator).

use std::sync::{Arc, Mutex};

use chatfuzz_corpus::{CorpusConfig, CorpusGenerator};
use chatfuzz_isa::count_valid_invalid;
use chatfuzz_lm::{train_lm, Gpt, GptConfig, Tokenizer, TrainConfig, TrainStep};
use chatfuzz_rl::{PpoConfig, PpoTrainer};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::campaign::{BatchOutcome, CampaignBuilder, DutFactory, StopCondition};
use crate::generator::{CoverageReward, LmGenerator, LmGeneratorConfig};
use crate::harness::HarnessConfig;

/// Scale of the transformer used by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelScale {
    /// 1-layer/16-dim: seconds-fast, for tests and smoke runs.
    Tiny,
    /// 2-layer/32-dim: the quick experiment configuration.
    Compact,
    /// 2-layer/64-dim: the full experiment configuration.
    Small,
}

impl ModelScale {
    fn config(self, vocab: usize) -> GptConfig {
        match self {
            ModelScale::Tiny => GptConfig::tiny(vocab),
            ModelScale::Compact => GptConfig::compact(vocab),
            ModelScale::Small => GptConfig::small(vocab),
        }
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Master seed.
    pub seed: u64,
    /// Corpus generation parameters.
    pub corpus: CorpusConfig,
    /// Number of corpus functions (paper: ~500 K kernel vectors; scaled).
    pub corpus_functions: usize,
    /// Tokenizer vocabulary size.
    pub vocab_size: u32,
    /// Transformer scale.
    pub scale: ModelScale,
    /// Unsupervised-training parameters.
    pub lm_train: TrainConfig,
    /// Cleanup-PPO iterations (paper: 30 epochs over 51.2 K samples).
    pub cleanup_iters: usize,
    /// Rollouts per cleanup iteration.
    pub cleanup_batch: usize,
    /// PPO hyper-parameters for the cleanup step.
    pub cleanup_ppo: PpoConfig,
    /// Optimisation-PPO iterations (paper: ≤15 epochs).
    pub optimize_iters: usize,
    /// Rollouts per optimisation iteration.
    pub optimize_batch: usize,
    /// PPO hyper-parameters for the optimisation step.
    pub optimize_ppo: PpoConfig,
    /// Coverage reward shaping.
    pub reward: CoverageReward,
    /// Prompt length range in instructions (paper: 2–5).
    pub prompt_range: (usize, usize),
    /// Use the learned nibble-BPE tokenizer instead of the default
    /// fixed-byte parcels (ablation; see `chatfuzz_lm::TokenizerKind`).
    pub use_bpe: bool,
    /// Harness wrapped around step-3 simulation inputs.
    pub harness: HarnessConfig,
}

impl PipelineConfig {
    /// A fast configuration for tests and demos (minutes end-to-end).
    pub fn quick(seed: u64) -> PipelineConfig {
        PipelineConfig {
            seed,
            corpus: CorpusConfig { seed, ..Default::default() },
            corpus_functions: 192,
            vocab_size: 224,
            scale: ModelScale::Compact,
            lm_train: TrainConfig { steps: 400, batch_size: 8, lr: 2e-3 },
            cleanup_iters: 12,
            cleanup_batch: 12,
            cleanup_ppo: PpoConfig {
                max_new_tokens: 56,
                lr: 1e-3,
                kl_coef: 0.02,
                temperature: 0.9,
                top_k: 24,
                ..Default::default()
            },
            optimize_iters: 4,
            optimize_batch: 8,
            optimize_ppo: PpoConfig {
                max_new_tokens: 56,
                lr: 3e-4,
                temperature: 0.9,
                top_k: 24,
                ..Default::default()
            },
            reward: CoverageReward::default(),
            prompt_range: (2, 4),
            use_bpe: false,
            harness: HarnessConfig::default(),
        }
    }

    /// The experiment configuration (tens of minutes end-to-end).
    pub fn experiment(seed: u64) -> PipelineConfig {
        PipelineConfig {
            corpus_functions: 512,
            vocab_size: 384,
            scale: ModelScale::Small,
            lm_train: TrainConfig { steps: 300, batch_size: 8, lr: 1e-3 },
            cleanup_iters: 30,
            cleanup_batch: 16,
            optimize_iters: 15,
            optimize_batch: 12,
            ..PipelineConfig::quick(seed)
        }
    }
}

/// The trained artefacts handed to the fuzzing loop.
#[derive(Debug)]
pub struct ChatFuzzModel {
    /// The trained tokenizer.
    pub tokenizer: Tokenizer,
    /// The trained policy.
    pub policy: Gpt,
    /// Corpus programs used as prompt prefixes.
    pub prompt_pool: Vec<Vec<u32>>,
}

/// One cleanup-step telemetry point (experiment E7).
#[derive(Debug, Clone, Copy)]
pub struct CleanupPoint {
    /// Iteration index.
    pub iter: usize,
    /// Mean Eq. (1) reward of the batch.
    pub mean_reward: f32,
    /// Mean fraction of valid instructions in generated vectors.
    pub valid_fraction: f64,
}

/// One optimisation-step telemetry point.
#[derive(Debug, Clone, Copy)]
pub struct OptimizePoint {
    /// Iteration index.
    pub iter: usize,
    /// Mean coverage reward of the batch.
    pub mean_reward: f32,
    /// Cumulative condition coverage after the iteration.
    pub coverage_pct: f64,
}

/// Telemetry of a full pipeline run.
#[derive(Debug)]
pub struct PipelineReport {
    /// Unsupervised-training loss curve.
    pub lm_curve: Vec<TrainStep>,
    /// Cleanup-step curve (valid-instruction rate rising).
    pub cleanup_curve: Vec<CleanupPoint>,
    /// Optimisation-step curve (coverage rising).
    pub optimize_curve: Vec<OptimizePoint>,
}

/// Runs the full three-step pipeline against the DUT the factory builds.
///
/// Returns the trained model plus training telemetry. Deterministic for a
/// fixed configuration.
pub fn train_chatfuzz(
    cfg: &PipelineConfig,
    dut_factory: &DutFactory,
) -> (ChatFuzzModel, PipelineReport) {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    // ---- Step 0: static data collection (corpus substitute). ----
    let mut corpus_gen = CorpusGenerator::new(cfg.corpus);
    let programs = corpus_gen.generate_words(cfg.corpus_functions);

    // ---- Step 1: tokenizer + unsupervised training. ----
    let tokenizer = if cfg.use_bpe {
        Tokenizer::train(&programs, cfg.vocab_size)
    } else {
        Tokenizer::fixed_byte()
    };
    let token_seqs: Vec<Vec<u32>> = programs.iter().map(|p| tokenizer.encode(p)).collect();
    let mut policy = Gpt::new(cfg.scale.config(tokenizer.vocab_size() as usize), &mut rng);
    let lm_curve = train_lm(&mut policy, &token_seqs, cfg.lm_train, &mut rng);

    // ---- Step 2: cleanup PPO with the disassembler reward (Eq. 1). ----
    let mut trainer = PpoTrainer::new(policy, cfg.cleanup_ppo);
    let mut cleanup_curve = Vec::with_capacity(cfg.cleanup_iters);
    for iter in 0..cfg.cleanup_iters {
        let mut rollouts = Vec::with_capacity(cfg.cleanup_batch);
        let mut valid_sum = 0.0f64;
        let mut reward_sum = 0.0f32;
        let mut counted = 0usize;
        for _ in 0..cfg.cleanup_batch {
            let prompt = sample_prompt(&tokenizer, &programs, cfg.prompt_range, &mut rng);
            let prompt_len = prompt.len();
            let full = trainer.sample(&prompt, &mut rng);
            if full.len() <= prompt_len {
                continue;
            }
            let bytes = tokenizer.decode_to_bytes(&full);
            let (valid, invalid) = count_valid_invalid(&bytes);
            // Eq. (1): f(GenText_i) = N_i - 5 * Invalid_i, scaled to keep
            // PPO rewards O(1).
            let reward = (valid as f32 - 5.0 * invalid as f32) / 16.0;
            valid_sum +=
                if valid + invalid == 0 { 0.0 } else { valid as f64 / (valid + invalid) as f64 };
            reward_sum += reward;
            counted += 1;
            rollouts.push(trainer.score(full, prompt_len, reward));
        }
        if rollouts.is_empty() {
            continue;
        }
        trainer.step(&rollouts);
        cleanup_curve.push(CleanupPoint {
            iter,
            mean_reward: reward_sum / counted as f32,
            valid_fraction: valid_sum / counted as f64,
        });
    }

    // ---- Step 3: optimisation PPO with the coverage reward. ----
    //
    // The paper runs this *inside* the fuzzing loop, and so do we: step 3
    // is nothing but a thin wrapper over a Campaign carrying the LM arm —
    // the cleaned-up policy becomes the online-training LmGenerator
    // (sampling through its KV cache), a single-worker campaign session
    // drives `optimize_iters × optimize_batch` tests, and a campaign
    // observer turns each batch into one telemetry point. There is no
    // bespoke rollout/simulate loop here: the same code path that serves
    // production campaigns (scheduling, feedback, durability) trains the
    // model.
    let probe = dut_factory();
    let total_bins = probe.space().total_bins();
    drop(probe);
    let reward_cfg = cfg.reward;
    let generator_cfg = LmGeneratorConfig {
        seed: cfg.seed ^ 0x0f7_1a17e, // decorrelated from the master stream
        prompt_min: cfg.prompt_range.0,
        prompt_max: cfg.prompt_range.1,
        online_training: true,
        reward: reward_cfg,
        total_bins,
        samples_per_input: 1,
        // The optimisation pipeline wants the training curve itself, so
        // it keeps the serialized in-line trainer (train every batch).
        publish_every: 0,
        learner_batch: 0,
    };
    let mut generator = LmGenerator::new(
        tokenizer,
        trainer.into_policy(),
        cfg.optimize_ppo,
        programs,
        generator_cfg,
    );
    let curve: Arc<Mutex<Vec<OptimizePoint>>> =
        Arc::new(Mutex::new(Vec::with_capacity(cfg.optimize_iters)));
    {
        let sink = Arc::clone(&curve);
        let mut campaign = CampaignBuilder::from_factory(Arc::clone(dut_factory))
            .batch_size(cfg.optimize_batch)
            .workers(1) // sequential, like the in-loop PPO of the paper
            .harness(cfg.harness)
            .detect_mismatches(false)
            .generator(&mut generator)
            .observer(move |outcome: &BatchOutcome| {
                let mean_reward = outcome
                    .feedback
                    .iter()
                    .map(|fb| reward_cfg.reward(fb, total_bins))
                    .sum::<f32>()
                    / outcome.feedback.len().max(1) as f32;
                sink.lock().expect("observer poisoned").push(OptimizePoint {
                    iter: outcome.batch_index,
                    mean_reward,
                    coverage_pct: outcome.coverage_pct,
                });
            })
            .build();
        campaign.run_until(&[StopCondition::Tests(cfg.optimize_iters * cfg.optimize_batch)]);
    }
    let optimize_curve = Arc::into_inner(curve)
        .expect("campaign dropped its observer")
        .into_inner()
        .expect("observer poisoned");

    let (tokenizer, policy, prompt_pool) = generator.into_parts();
    let model = ChatFuzzModel { tokenizer, policy, prompt_pool };
    (model, PipelineReport { lm_curve, cleanup_curve, optimize_curve })
}

/// A `BOS instr SEP …` prompt from the first 2–5 instructions of a corpus
/// function (paper §IV-C.2).
fn sample_prompt<R: Rng>(
    tokenizer: &Tokenizer,
    programs: &[Vec<u32>],
    range: (usize, usize),
    rng: &mut R,
) -> Vec<u32> {
    let program = programs.choose(rng).expect("non-empty corpus");
    let take = rng.gen_range(range.0..=range.1).min(program.len());
    tokenizer.encode_prompt(&program[..take])
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_rtl::{Dut, Rocket, RocketConfig};

    /// End-to-end smoke: the quick pipeline trains and produces a model
    /// whose generations are mostly valid instructions.
    #[test]
    fn quick_pipeline_trains_and_improves_validity() {
        let factory: DutFactory =
            Arc::new(|| Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>);
        let cfg = PipelineConfig::quick(42);
        let (model, report) = train_chatfuzz(&cfg, &factory);

        assert_eq!(report.lm_curve.len(), cfg.lm_train.steps);
        assert!(!report.cleanup_curve.is_empty());
        assert!(!report.optimize_curve.is_empty());

        // LM training reduced loss overall.
        let first = report.lm_curve.first().unwrap().loss;
        let last = report.lm_curve.last().unwrap().loss;
        assert!(last < first, "LM loss fell: {first} -> {last}");

        // The trained model's generations decode into instruction images.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let tokens = model.policy.generate(&[chatfuzz_lm::tokenizer::BOS], 24, 1.0, 16, &mut rng);
        let bytes = model.tokenizer.decode_to_bytes(&tokens);
        assert_eq!(bytes.len() % 4, 0);

        // Step 3 accumulated nonzero coverage.
        let final_cov = report.optimize_curve.last().unwrap().coverage_pct;
        assert!(final_cov > 10.0, "step-3 coverage is substantial: {final_cov:.1}%");
    }
}
