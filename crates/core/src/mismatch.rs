//! The Mismatch Detector (paper §III-C / §IV-A).
//!
//! Differential testing: the same input runs on the DUT and the golden
//! model; their architectural traces are diffed record by record. Raw
//! mismatches are clustered by *signature* into unique mismatches
//! (the paper reports ~5.9 K raw → >100 unique), and signatures matching
//! the known RocketCore defects are classified for the bug report.

use std::collections::BTreeMap;
use std::fmt;

use chatfuzz_isa::{decode, Instr, Reg};
use chatfuzz_softcore::trace::{ExitReason, Trace};

/// One observed trace divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mismatch {
    /// The two runs ended differently.
    ExitDivergence {
        /// Golden-model exit.
        golden: ExitReason,
        /// DUT exit.
        dut: ExitReason,
    },
    /// One trace is a strict prefix of the other.
    LengthDivergence {
        /// Golden-model record count.
        golden: usize,
        /// DUT record count.
        dut: usize,
    },
    /// Control flow diverged (different PC at the same slot).
    PcDivergence {
        /// Record index.
        index: usize,
        /// Golden PC.
        golden_pc: u64,
        /// DUT PC.
        dut_pc: u64,
    },
    /// Same PC fetched different instruction words (stale I-cache).
    WordDivergence {
        /// Record index.
        index: usize,
        /// The PC.
        pc: u64,
        /// Golden word.
        golden_word: u32,
        /// DUT word.
        dut_word: u32,
    },
    /// Register write-back differs (missing, spurious, or wrong value).
    RdWriteDivergence {
        /// Record index.
        index: usize,
        /// The PC.
        pc: u64,
        /// Instruction word at that slot.
        word: u32,
        /// Golden write-back.
        golden: Option<(Reg, u64)>,
        /// DUT write-back.
        dut: Option<(Reg, u64)>,
    },
    /// Trap presence or cause differs.
    TrapDivergence {
        /// Record index.
        index: usize,
        /// The PC.
        pc: u64,
        /// Golden trap cause.
        golden_cause: Option<u64>,
        /// DUT trap cause.
        dut_cause: Option<u64>,
    },
    /// Memory effect differs.
    MemDivergence {
        /// Record index.
        index: usize,
        /// The PC.
        pc: u64,
    },
}

impl Mismatch {
    /// A clustering signature: mismatches with the same signature are the
    /// "same" unique mismatch (the paper's automated filtration step).
    pub fn signature(&self) -> String {
        match self {
            Mismatch::ExitDivergence { golden, dut } => {
                format!("exit:{golden}|{dut}")
            }
            Mismatch::LengthDivergence { .. } => "length".to_string(),
            Mismatch::PcDivergence { .. } => "pc".to_string(),
            Mismatch::WordDivergence { .. } => "word:stale-fetch".to_string(),
            Mismatch::RdWriteDivergence { word, golden, dut, .. } => {
                let class = decode(*word).map(|i| instr_class(&i)).unwrap_or("unknown");
                let shape = match (golden, dut) {
                    (Some(_), None) => "missing",
                    (None, Some((r, _))) if r.is_zero() => "spurious-x0",
                    (None, Some(_)) => "spurious",
                    (Some((gr, _)), Some((dr, _))) if gr != dr => "wrong-reg",
                    _ => "wrong-value",
                };
                format!("rd:{class}:{shape}")
            }
            Mismatch::TrapDivergence { golden_cause, dut_cause, .. } => {
                format!("trap:{golden_cause:?}|{dut_cause:?}")
            }
            Mismatch::MemDivergence { .. } => "mem".to_string(),
        }
    }
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mismatch::ExitDivergence { golden, dut } => {
                write!(f, "exit divergence: golden `{golden}` vs dut `{dut}`")
            }
            Mismatch::LengthDivergence { golden, dut } => {
                write!(f, "trace length divergence: golden {golden} vs dut {dut}")
            }
            Mismatch::PcDivergence { index, golden_pc, dut_pc } => {
                write!(f, "pc divergence @slot {index}: {golden_pc:#x} vs {dut_pc:#x}")
            }
            Mismatch::WordDivergence { index, pc, golden_word, dut_word } => write!(
                f,
                "stale fetch @slot {index} pc {pc:#x}: {golden_word:#010x} vs {dut_word:#010x}"
            ),
            Mismatch::RdWriteDivergence { index, pc, golden, dut, .. } => {
                write!(f, "rd-write divergence @slot {index} pc {pc:#x}: {golden:?} vs {dut:?}")
            }
            Mismatch::TrapDivergence { index, pc, golden_cause, dut_cause } => write!(
                f,
                "trap divergence @slot {index} pc {pc:#x}: cause {golden_cause:?} vs {dut_cause:?}"
            ),
            Mismatch::MemDivergence { index, pc } => {
                write!(f, "memory-effect divergence @slot {index} pc {pc:#x}")
            }
        }
    }
}

fn instr_class(i: &Instr) -> &'static str {
    match i {
        Instr::MulDiv { .. } => "muldiv",
        Instr::Amo { .. } => "amo",
        Instr::Op { .. } | Instr::OpImm { .. } => "alu",
        Instr::Load { .. } => "load",
        Instr::Store { .. } => "store",
        Instr::Csr { .. } => "csr",
        _ => "other",
    }
}

/// Known injected RocketCore defects (the paper's findings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KnownBug {
    /// BUG1: I-cache incoherence without `fence.i` (CWE-1202).
    Bug1IcacheCoherency,
    /// BUG2: tracer omits mul/div write-backs (CWE-440).
    Bug2TracerMulDiv,
    /// Finding 1: access-fault reported where misaligned has priority.
    Finding1ExceptionPriority,
    /// Finding 2: AMO with `rd = x0` logs a value into `x0`.
    Finding2AmoX0,
    /// Finding 3: spurious `x0` write records in bypass sequences.
    Finding3X0Bypass,
}

impl fmt::Display for KnownBug {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnownBug::Bug1IcacheCoherency => {
                write!(f, "BUG1: icache coherency / fence.i (CWE-1202)")
            }
            KnownBug::Bug2TracerMulDiv => {
                write!(f, "BUG2: tracer drops mul/div write-back (CWE-440)")
            }
            KnownBug::Finding1ExceptionPriority => {
                write!(f, "Finding1: misaligned/access-fault priority inversion")
            }
            KnownBug::Finding2AmoX0 => write!(f, "Finding2: AMO rd=x0 traced as written"),
            KnownBug::Finding3X0Bypass => write!(f, "Finding3: x0 bypass write traced"),
        }
    }
}

/// Maps a mismatch to the known defect it evidences, if any.
pub fn classify(m: &Mismatch) -> Option<KnownBug> {
    match m {
        Mismatch::WordDivergence { .. } => Some(KnownBug::Bug1IcacheCoherency),
        Mismatch::RdWriteDivergence { word, golden, dut, .. } => {
            let instr = decode(*word).ok()?;
            match (&instr, golden, dut) {
                (Instr::MulDiv { .. }, Some(_), None) => Some(KnownBug::Bug2TracerMulDiv),
                (Instr::Amo { .. }, None, Some((r, _))) if r.is_zero() => {
                    Some(KnownBug::Finding2AmoX0)
                }
                (Instr::Op { .. } | Instr::OpImm { .. }, None, Some((r, _))) if r.is_zero() => {
                    Some(KnownBug::Finding3X0Bypass)
                }
                _ => None,
            }
        }
        Mismatch::TrapDivergence { golden_cause, dut_cause, .. } => {
            match (golden_cause, dut_cause) {
                (Some(4), Some(5)) | (Some(6), Some(7)) => {
                    Some(KnownBug::Finding1ExceptionPriority)
                }
                _ => None,
            }
        }
        Mismatch::ExitDivergence { golden, dut } => {
            // Unhandled traps carry the diverging causes in the exit reason.
            if let (ExitReason::UnhandledTrap(g), ExitReason::UnhandledTrap(d)) = (golden, dut) {
                match (g.cause(), d.cause()) {
                    (4, 5) | (6, 7) => Some(KnownBug::Finding1ExceptionPriority),
                    _ => None,
                }
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Optional suppression filters verification engineers can install
/// (paper §IV-A: "filters ... to filter out most of the false positive
/// mismatches").
#[derive(Debug, Clone, Default)]
pub struct MismatchFilter {
    /// Suppress trailing [`Mismatch::LengthDivergence`] reports.
    pub ignore_length: bool,
    /// Suppress divergences that only involve these registers.
    pub ignore_regs: Vec<Reg>,
}

impl MismatchFilter {
    /// Whether the mismatch passes (is kept by) the filter.
    pub fn keep(&self, m: &Mismatch) -> bool {
        match m {
            Mismatch::LengthDivergence { .. } if self.ignore_length => false,
            Mismatch::RdWriteDivergence { golden, dut, .. } => {
                let touches_ignored = |w: &Option<(Reg, u64)>| {
                    w.map(|(r, _)| self.ignore_regs.contains(&r)).unwrap_or(false)
                };
                !(touches_ignored(golden) || touches_ignored(dut))
            }
            _ => true,
        }
    }
}

/// Diffs two traces; scanning stops after a control divergence (PC or
/// fetched word), since every later slot compares unrelated instructions.
pub fn diff_traces(golden: &Trace, dut: &Trace) -> Vec<Mismatch> {
    let mut out = Vec::new();
    for (index, (g, d)) in golden.records.iter().zip(&dut.records).enumerate() {
        if g.pc != d.pc {
            out.push(Mismatch::PcDivergence { index, golden_pc: g.pc, dut_pc: d.pc });
            return out;
        }
        if g.word != d.word {
            out.push(Mismatch::WordDivergence {
                index,
                pc: g.pc,
                golden_word: g.word,
                dut_word: d.word,
            });
            return out;
        }
        let g_cause = g.trap.map(|t| t.exception.cause());
        let d_cause = d.trap.map(|t| t.exception.cause());
        if g_cause != d_cause {
            out.push(Mismatch::TrapDivergence {
                index,
                pc: g.pc,
                golden_cause: g_cause,
                dut_cause: d_cause,
            });
            // Different traps change downstream state; stop scanning.
            return out;
        }
        if g.rd_write != d.rd_write {
            out.push(Mismatch::RdWriteDivergence {
                index,
                pc: g.pc,
                word: g.word,
                golden: g.rd_write,
                dut: d.rd_write,
            });
        }
        if g.mem != d.mem {
            out.push(Mismatch::MemDivergence { index, pc: g.pc });
        }
    }
    if golden.records.len() != dut.records.len() {
        out.push(Mismatch::LengthDivergence {
            golden: golden.records.len(),
            dut: dut.records.len(),
        });
    }
    if golden.exit != dut.exit {
        out.push(Mismatch::ExitDivergence { golden: golden.exit, dut: dut.exit });
    }
    out
}

/// A deduplicated mismatch cluster.
#[derive(Debug, Clone)]
pub struct UniqueMismatch {
    /// The clustering signature.
    pub signature: String,
    /// A representative instance.
    pub example: Mismatch,
    /// How many raw mismatches share the signature.
    pub count: usize,
    /// Classification, if the signature matches a known defect.
    pub bug: Option<KnownBug>,
}

/// Accumulates raw mismatches across a campaign and clusters them.
/// Cloneable so campaign snapshots can checkpoint it.
#[derive(Debug, Clone, Default)]
pub struct MismatchLog {
    raw_count: usize,
    clusters: BTreeMap<String, UniqueMismatch>,
    filter: MismatchFilter,
}

impl MismatchLog {
    /// Creates an empty log with no filters.
    pub fn new() -> MismatchLog {
        MismatchLog::default()
    }

    /// Creates a log with suppression filters installed.
    pub fn with_filter(filter: MismatchFilter) -> MismatchLog {
        MismatchLog { filter, ..Default::default() }
    }

    /// Records the mismatches of one input.
    pub fn record(&mut self, mismatches: Vec<Mismatch>) {
        for m in mismatches {
            if !self.filter.keep(&m) {
                continue;
            }
            self.raw_count += 1;
            let sig = m.signature();
            let bug = classify(&m);
            self.clusters
                .entry(sig.clone())
                .and_modify(|u| u.count += 1)
                .or_insert(UniqueMismatch { signature: sig, example: m, count: 1, bug });
        }
    }

    /// Total raw (post-filter) mismatches.
    pub fn raw_count(&self) -> usize {
        self.raw_count
    }

    /// The installed suppression filter.
    pub fn filter(&self) -> &MismatchFilter {
        &self.filter
    }

    /// Rebuilds a log from persisted parts (see [`crate::persist`]):
    /// clusters keyed by their signatures, with the raw count restored
    /// independently because filters may have suppressed records that
    /// never clustered.
    ///
    /// # Panics
    ///
    /// Panics if a cluster's stored signature disagrees with its
    /// example's, which indicates a corrupt or hand-edited snapshot.
    pub fn from_parts(
        raw_count: usize,
        clusters: Vec<UniqueMismatch>,
        filter: MismatchFilter,
    ) -> MismatchLog {
        let clusters = clusters
            .into_iter()
            .map(|u| {
                assert_eq!(u.signature, u.example.signature(), "cluster signature mismatch");
                (u.signature.clone(), u)
            })
            .collect();
        MismatchLog { raw_count, clusters, filter }
    }

    /// Folds another log's clusters and raw count into this one — the
    /// merge operation sharded campaigns use. Counts add; the first
    /// (lowest-shard) example of each signature is kept; this log's
    /// filter wins (both sides already applied their own at record time).
    pub fn merge_from(&mut self, other: &MismatchLog) {
        self.raw_count += other.raw_count;
        for (sig, theirs) in &other.clusters {
            self.clusters
                .entry(sig.clone())
                .and_modify(|u| u.count += theirs.count)
                .or_insert_with(|| theirs.clone());
        }
    }

    /// Folds in only what `later` recorded *beyond* `base` — the merge
    /// operation for merge-then-continue fleets, where every worker's
    /// log starts as a copy of the shared base log and a plain
    /// [`MismatchLog::merge_from`] would count the base once per worker.
    /// `later` must descend from `base` (every base cluster count is a
    /// lower bound for `later`'s).
    pub fn merge_delta_from(&mut self, later: &MismatchLog, base: &MismatchLog) {
        self.raw_count += later.raw_count - base.raw_count;
        for (sig, theirs) in &later.clusters {
            let base_count = base.clusters.get(sig).map_or(0, |u| u.count);
            let delta = theirs.count - base_count;
            if delta == 0 {
                continue;
            }
            self.clusters
                .entry(sig.clone())
                .and_modify(|u| u.count += delta)
                .or_insert_with(|| UniqueMismatch { count: delta, ..theirs.clone() });
        }
    }

    /// Unique mismatch clusters, in signature order.
    pub fn unique(&self) -> Vec<&UniqueMismatch> {
        self.clusters.values().collect()
    }

    /// The set of known defects evidenced so far.
    pub fn bugs_found(&self) -> Vec<KnownBug> {
        let mut bugs: Vec<KnownBug> = self.clusters.values().filter_map(|u| u.bug).collect();
        bugs.sort_unstable();
        bugs.dedup();
        bugs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_isa::PrivLevel;
    use chatfuzz_softcore::trace::CommitRecord;

    fn record(pc: u64, word: u32) -> CommitRecord {
        CommitRecord {
            pc,
            word,
            priv_level: PrivLevel::Machine,
            rd_write: None,
            mem: None,
            trap: None,
        }
    }

    fn trace(records: Vec<CommitRecord>) -> Trace {
        Trace { records, exit: ExitReason::Wfi }
    }

    #[test]
    fn identical_traces_produce_no_mismatch() {
        let t = trace(vec![record(0x8000_0000, 0x13)]);
        assert!(diff_traces(&t, &t).is_empty());
    }

    #[test]
    fn word_divergence_stops_scan_and_classifies_bug1() {
        let g = trace(vec![record(0x8000_0000, 0x13), record(0x8000_0004, 0x13)]);
        let mut d = g.clone();
        d.records[0].word = 0x1111_1111;
        d.records[1].pc = 0xdead; // downstream junk must not be reported
        let ms = diff_traces(&g, &d);
        assert_eq!(ms.len(), 1);
        assert_eq!(classify(&ms[0]), Some(KnownBug::Bug1IcacheCoherency));
    }

    #[test]
    fn muldiv_missing_writeback_classifies_bug2() {
        let mul = chatfuzz_isa::encode(&Instr::MulDiv {
            op: chatfuzz_isa::MulDivOp::Mul,
            rd: Reg::new(10).unwrap(),
            rs1: Reg::new(10).unwrap(),
            rs2: Reg::new(11).unwrap(),
            word: false,
        })
        .unwrap();
        let mut g = trace(vec![record(0x8000_0000, mul)]);
        g.records[0].rd_write = Some((Reg::new(10).unwrap(), 42));
        let mut d = g.clone();
        d.records[0].rd_write = None;
        let ms = diff_traces(&g, &d);
        assert_eq!(ms.len(), 1);
        assert_eq!(classify(&ms[0]), Some(KnownBug::Bug2TracerMulDiv));
    }

    #[test]
    fn trap_cause_flip_classifies_finding1() {
        let g = Trace {
            records: vec![],
            exit: ExitReason::UnhandledTrap(chatfuzz_isa::Exception::LoadAddrMisaligned {
                addr: 3,
            }),
        };
        let d = Trace {
            records: vec![],
            exit: ExitReason::UnhandledTrap(chatfuzz_isa::Exception::LoadAccessFault { addr: 3 }),
        };
        let ms = diff_traces(&g, &d);
        assert_eq!(ms.len(), 1);
        assert_eq!(classify(&ms[0]), Some(KnownBug::Finding1ExceptionPriority));
    }

    #[test]
    fn spurious_x0_writes_classify_f2_f3() {
        let amo = chatfuzz_isa::encode(&Instr::Amo {
            op: chatfuzz_isa::AmoOp::Or,
            width: chatfuzz_isa::MemWidth::D,
            rd: Reg::X0,
            rs1: Reg::new(10).unwrap(),
            rs2: Reg::new(11).unwrap(),
            aq: false,
            rl: false,
        })
        .unwrap();
        let g = trace(vec![record(0x8000_0000, amo)]);
        let mut d = g.clone();
        d.records[0].rd_write = Some((Reg::X0, 7));
        let ms = diff_traces(&g, &d);
        assert_eq!(classify(&ms[0]), Some(KnownBug::Finding2AmoX0));

        let alu = chatfuzz_isa::encode(&Instr::Op {
            op: chatfuzz_isa::AluOp::Add,
            rd: Reg::X0,
            rs1: Reg::new(11).unwrap(),
            rs2: Reg::new(11).unwrap(),
            word: false,
        })
        .unwrap();
        let g = trace(vec![record(0x8000_0000, alu)]);
        let mut d = g.clone();
        d.records[0].rd_write = Some((Reg::X0, 14));
        let ms = diff_traces(&g, &d);
        assert_eq!(classify(&ms[0]), Some(KnownBug::Finding3X0Bypass));
    }

    #[test]
    fn log_clusters_by_signature() {
        let mut log = MismatchLog::new();
        for i in 0..5 {
            log.record(vec![Mismatch::WordDivergence {
                index: i,
                pc: 0x8000_0000 + i as u64 * 4,
                golden_word: 1,
                dut_word: 2,
            }]);
        }
        log.record(vec![Mismatch::PcDivergence { index: 0, golden_pc: 1, dut_pc: 2 }]);
        assert_eq!(log.raw_count(), 6);
        assert_eq!(log.unique().len(), 2);
        assert_eq!(log.bugs_found(), vec![KnownBug::Bug1IcacheCoherency]);
    }

    #[test]
    fn merge_from_sums_counts_and_unions_clusters() {
        let mut a = MismatchLog::new();
        let mut b = MismatchLog::new();
        a.record(vec![Mismatch::PcDivergence { index: 0, golden_pc: 1, dut_pc: 2 }]);
        b.record(vec![
            Mismatch::PcDivergence { index: 5, golden_pc: 3, dut_pc: 4 },
            Mismatch::MemDivergence { index: 1, pc: 0x80 },
        ]);
        a.merge_from(&b);
        assert_eq!(a.raw_count(), 3);
        let unique = a.unique();
        assert_eq!(unique.len(), 2);
        // a's own example survives the merge for the shared signature.
        assert_eq!(
            unique.iter().find(|u| u.signature == "pc").unwrap().example,
            Mismatch::PcDivergence { index: 0, golden_pc: 1, dut_pc: 2 }
        );
        assert_eq!(unique.iter().find(|u| u.signature == "pc").unwrap().count, 2);
    }

    #[test]
    fn merge_delta_adds_only_growth_beyond_the_base() {
        let mut base = MismatchLog::new();
        base.record(vec![Mismatch::PcDivergence { index: 0, golden_pc: 1, dut_pc: 2 }]);
        let mut later = base.clone();
        later.record(vec![
            Mismatch::PcDivergence { index: 1, golden_pc: 3, dut_pc: 4 },
            Mismatch::MemDivergence { index: 1, pc: 0x80 },
        ]);

        // Shard 0's copy already holds the base once.
        let mut merged = base.clone();
        merged.merge_delta_from(&later, &base);
        assert_eq!(merged.raw_count(), 3, "base counted once, delta of 2 added");
        let count_of = |log: &MismatchLog, sig: &str| {
            log.unique().iter().find(|u| u.signature == sig).map(|u| u.count)
        };
        assert_eq!(count_of(&merged, "pc"), Some(2));
        assert_eq!(count_of(&merged, "mem"), Some(1));

        // A worker that recorded nothing new contributes nothing.
        let mut unchanged = base.clone();
        unchanged.merge_delta_from(&base, &base);
        assert_eq!(unchanged.raw_count(), base.raw_count());
        assert_eq!(unchanged.unique().len(), base.unique().len());
    }

    #[test]
    fn from_parts_round_trips_a_log() {
        let mut log = MismatchLog::new();
        log.record(vec![
            Mismatch::PcDivergence { index: 0, golden_pc: 1, dut_pc: 2 },
            Mismatch::MemDivergence { index: 1, pc: 0x80 },
        ]);
        log.record(vec![Mismatch::MemDivergence { index: 2, pc: 0x84 }]);
        let rebuilt = MismatchLog::from_parts(
            log.raw_count(),
            log.unique().into_iter().cloned().collect(),
            log.filter().clone(),
        );
        assert_eq!(rebuilt.raw_count(), log.raw_count());
        assert_eq!(rebuilt.unique().len(), log.unique().len());
        assert_eq!(rebuilt.bugs_found(), log.bugs_found());
    }

    #[test]
    fn filters_suppress_configured_reports() {
        let filter = MismatchFilter { ignore_length: true, ignore_regs: vec![Reg::X0] };
        let mut log = MismatchLog::with_filter(filter);
        log.record(vec![
            Mismatch::LengthDivergence { golden: 1, dut: 2 },
            Mismatch::RdWriteDivergence {
                index: 0,
                pc: 0,
                word: 0x13,
                golden: None,
                dut: Some((Reg::X0, 1)),
            },
        ]);
        assert_eq!(log.raw_count(), 0);
    }
}
