//! Campaign sessions (paper Fig. 1a, as an owned, steppable object).
//!
//! The original entry point was one blocking free function that wired
//! batching, history sampling, and the stop check by hand. This module
//! replaces it with a session API:
//!
//! * [`CampaignBuilder`] assembles generators, the DUT factory, harness,
//!   golden model, a [`Scheduler`](chatfuzz_baselines::Scheduler) and any
//!   [`CampaignObserver`]s, then [`CampaignBuilder::build`] spawns the
//!   worker pool (the paper's "ten instances of VCS") once for the whole
//!   session;
//! * [`Campaign::step_batch`] advances the loop one batch at a time and
//!   returns the [`BatchOutcome`];
//! * [`Campaign::run_until`] drives batches until any [`StopCondition`]
//!   triggers — test budget, simulated-cycle budget, wall-clock deadline,
//!   target coverage, or a coverage plateau;
//! * [`Campaign::snapshot`] / [`CampaignBuilder::resume`] checkpoint and
//!   continue long runs;
//! * multiple generators are multiplexed by a pluggable scheduler
//!   (round-robin, or the MABFuzz-style epsilon-greedy bandit rewarded
//!   with incremental coverage per test).
//!
//! Snapshots capture scheduler state ([`SchedulerState`]) alongside
//! coverage and mismatch state, persist to disk via [`crate::persist`],
//! and scale horizontally via [`crate::shard`].

use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use chatfuzz_baselines::{
    Feedback, GeneratorState, InputGenerator, RoundRobin, Scheduler, SchedulerState,
};
use chatfuzz_coverage::{Calculator, CovMap, PointKind, Space};
use chatfuzz_rtl::{Dut, DutRun};
use chatfuzz_softcore::trace::Trace;
use chatfuzz_softcore::{SoftCoreConfig, SoftCoreRunner};
use chatfuzz_telemetry::TelemetrySink;
use crossbeam::channel::{self, Receiver, Sender};

use crate::harness::{HarnessConfig, PrecompiledHarness};
use crate::mismatch::{diff_traces, KnownBug, MismatchLog, UniqueMismatch};

/// A shared, thread-safe DUT constructor: one DUT is built per worker and
/// lives for the whole session. All instances must elaborate identical
/// coverage spaces (guaranteed for the deterministic cores in
/// `chatfuzz-rtl`).
pub type DutFactory = Arc<dyn Fn() -> Box<dyn Dut> + Send + Sync>;

/// Campaign parameters (everything except *when to stop*, which
/// [`Campaign::run_until`] takes per call).
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Inputs per batch (one Coverage-Calculator batch).
    pub batch_size: usize,
    /// Parallel simulation workers (the paper's "ten instances of VCS").
    pub workers: usize,
    /// Harness wrapped around each input.
    pub harness: HarnessConfig,
    /// Golden-model configuration (budgets must match the DUT's).
    pub golden: SoftCoreConfig,
    /// Run the golden model + mismatch detector.
    pub detect_mismatches: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            batch_size: 32,
            workers: 10,
            harness: HarnessConfig::default(),
            golden: SoftCoreConfig::default(),
            detect_mismatches: true,
        }
    }
}

/// When a campaign should stop (checked before every batch, in the order
/// given to [`Campaign::run_until`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopCondition {
    /// Total tests executed reach the budget. The final batch is clamped
    /// so the budget is hit exactly.
    Tests(usize),
    /// Total simulated DUT cycles reach the budget.
    SimCycles(u64),
    /// Wall-clock since the session started (including time accumulated
    /// before a [`CampaignSnapshot`]) reaches the deadline.
    WallClock(Duration),
    /// Cumulative condition coverage reaches the given percentage.
    CoveragePct(f64),
    /// No new coverage bins for this many consecutive batches.
    Plateau(usize),
}

/// One coverage-over-time sample.
///
/// History is exact: a point is recorded for every input that advanced
/// cumulative coverage (so `tests_to_reach`/`cycles_to_reach` report the
/// true first crossing), plus one endpoint per `run_until`.
#[derive(Debug, Clone, Copy)]
pub struct CoveragePoint {
    /// Tests executed up to and including the advancing input.
    pub tests: usize,
    /// Cumulative covered bins.
    pub covered_bins: usize,
    /// Cumulative condition coverage percentage.
    pub coverage_pct: f64,
    /// Total simulated DUT cycles so far.
    pub sim_cycles: u64,
    /// Wall-clock since campaign start.
    pub wall: Duration,
}

/// Per-generator session statistics (fed by the scheduler loop).
#[derive(Debug, Clone)]
pub struct GeneratorStats {
    /// Generator name.
    pub name: String,
    /// Batches this generator produced.
    pub batches: usize,
    /// Tests this generator produced.
    pub tests: usize,
    /// Coverage bins first reached by this generator's batches.
    pub new_bins: usize,
    /// Simulated cycles spent on this generator's tests.
    pub cycles: u64,
}

impl GeneratorStats {
    /// The scheduler's reward view: new bins per test.
    pub fn reward_rate(&self) -> f64 {
        if self.tests == 0 {
            0.0
        } else {
            self.new_bins as f64 / self.tests as f64
        }
    }
}

/// Everything one batch produced; handed to every [`CampaignObserver`]
/// and returned by [`Campaign::step_batch`].
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// 0-based batch number within the session.
    pub batch_index: usize,
    /// Which generator produced the batch.
    pub generator_index: usize,
    /// That generator's name.
    pub generator: String,
    /// Tests in this batch.
    pub tests: usize,
    /// Cumulative tests after this batch.
    pub tests_total: usize,
    /// Coverage bins first reached by this batch.
    pub new_bins: usize,
    /// Cumulative covered bins after this batch.
    pub covered_bins: usize,
    /// Cumulative coverage percentage after this batch.
    pub coverage_pct: f64,
    /// Simulated cycles consumed by this batch.
    pub batch_cycles: u64,
    /// Cumulative simulated cycles after this batch.
    pub total_cycles: u64,
    /// Raw mismatches recorded by this batch.
    pub new_mismatches: usize,
    /// Cumulative raw mismatches after this batch.
    pub total_mismatches: usize,
    /// Per-input coverage feedback (what the generator observed).
    pub feedback: Vec<Feedback>,
    /// Wall-clock since campaign start.
    pub wall: Duration,
}

/// Receives per-batch progress events — the replacement for the old
/// hard-coded `history_every` sampling. Attach with
/// [`CampaignBuilder::observer`].
pub trait CampaignObserver: Send {
    /// Called after every batch, in attachment order.
    fn on_batch(&mut self, outcome: &BatchOutcome);
}

impl<F: FnMut(&BatchOutcome) + Send> CampaignObserver for F {
    fn on_batch(&mut self, outcome: &BatchOutcome) {
        self(outcome)
    }
}

/// Campaign results.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Generator name (names joined with `+` for multi-generator
    /// sessions).
    pub generator: String,
    /// DUT name.
    pub dut: String,
    /// Coverage-over-time history (exact crossings; ends with the final
    /// point).
    pub history: Vec<CoveragePoint>,
    /// Final cumulative coverage percentage.
    pub final_coverage_pct: f64,
    /// Tests executed.
    pub tests_run: usize,
    /// Batches executed.
    pub batches_run: usize,
    /// Raw mismatch count (before clustering).
    pub raw_mismatches: usize,
    /// Unique mismatch clusters.
    pub unique_mismatches: Vec<UniqueMismatch>,
    /// Known defects evidenced.
    pub bugs: Vec<KnownBug>,
    /// Total simulated DUT cycles.
    pub total_cycles: u64,
    /// Total wall-clock time.
    pub wall: Duration,
    /// Per-generator scheduling statistics.
    pub generator_stats: Vec<GeneratorStats>,
    /// Which stop condition ended the last `run_until`, if one has run.
    pub stopped_by: Option<StopCondition>,
}

impl CampaignReport {
    /// Tests needed to first reach `pct` coverage, if ever reached.
    ///
    /// Exact to the input: the session records a history point for every
    /// coverage-advancing test, so a crossing can no longer hide between
    /// sampling intervals.
    pub fn tests_to_reach(&self, pct: f64) -> Option<usize> {
        self.history.iter().find(|p| p.coverage_pct >= pct).map(|p| p.tests)
    }

    /// Simulated cycles needed to first reach `pct` coverage.
    pub fn cycles_to_reach(&self, pct: f64) -> Option<u64> {
        self.history.iter().find(|p| p.coverage_pct >= pct).map(|p| p.sim_cycles)
    }
}

/// A resumable checkpoint of everything the campaign accumulated:
/// coverage state, mismatch clusters, history, per-generator statistics,
/// scheduler state, and counters. Persist to disk with [`crate::persist`]
/// for cross-process resume.
///
/// Scheduler state *is* captured ([`SchedulerState`]) and restored by
/// [`CampaignBuilder::resume`], so bandit arm statistics survive a
/// checkpoint. So is every stateful generator's accumulated state
/// ([`GeneratorState`], via `InputGenerator::export_state`/`import_state`)
/// — the evolve arm's retained seeds, pick counters, and mutation RNG
/// stream, and the LM arm's trained weights, optimiser moments, refreshed
/// prompt pool, and sampling RNG stream all continue bit-for-bit. Other
/// generator-internal state is not — trait objects carry arbitrary state;
/// rebuild the generators (deterministic ones replay from their seed,
/// stateful ones are restored by the import) and hand the snapshot to the
/// builder. The rebuilt generator line-up must match the snapshot's (same
/// names, same order), and the rebuilt scheduler must be the same kind
/// constructed with the same parameters.
#[derive(Debug, Clone)]
pub struct CampaignSnapshot {
    pub(crate) dut: String,
    pub(crate) calculator: Calculator,
    pub(crate) log: MismatchLog,
    pub(crate) history: Vec<CoveragePoint>,
    pub(crate) gen_stats: Vec<GeneratorStats>,
    pub(crate) scheduler: SchedulerState,
    /// Per-generator accumulated state (corpus and/or model), aligned
    /// with `gen_stats`; `None` for stateless generators.
    pub(crate) gen_states: Vec<Option<GeneratorState>>,
    pub(crate) tests_run: usize,
    pub(crate) batches_run: usize,
    pub(crate) total_cycles: u64,
    pub(crate) batches_since_gain: usize,
    pub(crate) wall: Duration,
    pub(crate) stopped_by: Option<StopCondition>,
}

impl CampaignSnapshot {
    /// Tests executed up to the checkpoint.
    pub fn tests_run(&self) -> usize {
        self.tests_run
    }

    /// Batches executed up to the checkpoint.
    pub fn batches_run(&self) -> usize {
        self.batches_run
    }

    /// Simulated DUT cycles up to the checkpoint.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Cumulative coverage percentage at the checkpoint.
    pub fn coverage_pct(&self) -> f64 {
        self.calculator.total_percent()
    }

    /// Cumulative coverage map at the checkpoint.
    pub fn coverage(&self) -> &CovMap {
        self.calculator.total()
    }

    /// DUT name the checkpoint was taken on.
    pub fn dut(&self) -> &str {
        &self.dut
    }

    /// Scheduler state at the checkpoint.
    pub fn scheduler_state(&self) -> &SchedulerState {
        &self.scheduler
    }

    /// Per-generator accumulated state at the checkpoint, aligned with
    /// the generator line-up (`None` for stateless generators).
    pub fn generator_states(&self) -> &[Option<GeneratorState>] {
        &self.gen_states
    }

    /// Mutable access to per-generator state — the seam orchestration
    /// hooks use to rewrite pooled state between generations (e.g.
    /// corpus distillation on a merged snapshot). The vector stays
    /// aligned with the generator line-up; only rewrite in place.
    pub fn generator_states_mut(&mut self) -> &mut [Option<GeneratorState>] {
        &mut self.gen_states
    }

    /// Per-generator production counters at the checkpoint, aligned with
    /// the generator line-up — the names here pair with the scheduler's
    /// per-arm statistics ([`SchedulerState::arm_statuses`]).
    ///
    /// [`SchedulerState::arm_statuses`]: chatfuzz_baselines::SchedulerState::arm_statuses
    pub fn generator_stats(&self) -> &[GeneratorStats] {
        &self.gen_stats
    }

    /// The stop condition scoping one lease that continues this
    /// checkpoint by `additional_tests` more tests.
    /// [`StopCondition::Tests`] counts from the campaign's origin, not
    /// from the resume point, so a lease budget must be added on top of
    /// the tests the checkpoint already carries.
    pub fn lease_stop(&self, additional_tests: usize) -> StopCondition {
        StopCondition::Tests(self.tests_run + additional_tests)
    }

    /// Renders the checkpoint as a [`CampaignReport`] — the same view
    /// [`Campaign::report`] produces for a live session, so persisted or
    /// merged snapshots feed the existing CSV/markdown/JSON renderers.
    pub fn report(&self) -> CampaignReport {
        let generator =
            self.gen_stats.iter().map(|s| s.name.as_str()).collect::<Vec<_>>().join("+");
        CampaignReport {
            generator,
            dut: self.dut.clone(),
            history: self.history.clone(),
            final_coverage_pct: self.calculator.total_percent(),
            tests_run: self.tests_run,
            batches_run: self.batches_run,
            raw_mismatches: self.log.raw_count(),
            unique_mismatches: self.log.unique().into_iter().cloned().collect(),
            bugs: self.log.bugs_found(),
            total_cycles: self.total_cycles,
            wall: self.wall,
            generator_stats: self.gen_stats.clone(),
            stopped_by: self.stopped_by,
        }
    }
}

/// Reusable per-test result buffers. Scratches travel with jobs to the
/// workers, come back filled inside [`JobResult`], and are recycled into
/// the next batch — in steady state the whole execute-and-collect loop
/// allocates nothing per test.
struct Scratch {
    run: DutRun,
    golden: Trace,
}

impl Scratch {
    fn new(space: &Arc<Space>) -> Scratch {
        Scratch { run: DutRun::scratch(space), golden: Trace::scratch() }
    }
}

struct Job {
    index: usize,
    image: Vec<u8>,
    scratch: Scratch,
}

struct JobResult {
    index: usize,
    /// The job's image buffer, returned for recycling.
    image: Vec<u8>,
    run: DutRun,
    /// The golden trace buffer (only meaningful when `ran_golden`).
    golden: Trace,
    ran_golden: bool,
}

/// Assembles a [`Campaign`].
///
/// Minimal use:
///
/// ```
/// use chatfuzz::campaign::{CampaignBuilder, StopCondition};
/// use chatfuzz_baselines::{MutatorConfig, TheHuzz};
/// use chatfuzz_rtl::{Dut, Rocket, RocketConfig};
///
/// let mut campaign = CampaignBuilder::new(|| {
///     Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>
/// })
/// .generator(TheHuzz::new(MutatorConfig::default()))
/// .workers(2)
/// .build();
/// let report = campaign.run_until(&[StopCondition::Tests(32)]);
/// assert_eq!(report.tests_run, 32);
/// ```
pub struct CampaignBuilder<'g> {
    factory: DutFactory,
    cfg: CampaignConfig,
    generators: Vec<Box<dyn InputGenerator + 'g>>,
    scheduler: Box<dyn Scheduler + 'g>,
    observers: Vec<Box<dyn CampaignObserver + 'g>>,
    resume_from: Option<CampaignSnapshot>,
    auto_checkpoint: Option<(PathBuf, usize)>,
    checkpoint_keep: usize,
    telemetry: TelemetrySink,
}

impl<'g> CampaignBuilder<'g> {
    /// Starts a builder around a DUT constructor.
    pub fn new(factory: impl Fn() -> Box<dyn Dut> + Send + Sync + 'static) -> CampaignBuilder<'g> {
        CampaignBuilder::from_factory(Arc::new(factory))
    }

    /// Starts a builder around an already-shared DUT factory.
    pub fn from_factory(factory: DutFactory) -> CampaignBuilder<'g> {
        CampaignBuilder {
            factory,
            cfg: CampaignConfig::default(),
            generators: Vec::new(),
            scheduler: Box::new(RoundRobin::new()),
            observers: Vec::new(),
            resume_from: None,
            auto_checkpoint: None,
            checkpoint_keep: 2,
            telemetry: TelemetrySink::disabled(),
        }
    }

    /// Replaces the whole parameter block at once.
    pub fn config(mut self, cfg: CampaignConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Inputs per batch.
    pub fn batch_size(mut self, n: usize) -> Self {
        self.cfg.batch_size = n;
        self
    }

    /// Parallel simulation workers.
    pub fn workers(mut self, n: usize) -> Self {
        self.cfg.workers = n;
        self
    }

    /// Enables or disables the golden model + mismatch detector.
    pub fn detect_mismatches(mut self, on: bool) -> Self {
        self.cfg.detect_mismatches = on;
        self
    }

    /// Harness wrapped around every input.
    pub fn harness(mut self, harness: HarnessConfig) -> Self {
        self.cfg.harness = harness;
        self
    }

    /// Golden-model configuration.
    pub fn golden(mut self, golden: SoftCoreConfig) -> Self {
        self.cfg.golden = golden;
        self
    }

    /// Adds an input generator (repeatable; batches are multiplexed by
    /// the scheduler).
    pub fn generator(mut self, generator: impl InputGenerator + 'g) -> Self {
        self.generators.push(Box::new(generator));
        self
    }

    /// Adds an already-boxed generator.
    pub fn generator_boxed(mut self, generator: Box<dyn InputGenerator + 'g>) -> Self {
        self.generators.push(generator);
        self
    }

    /// Sets the generator scheduler (default: round-robin).
    pub fn scheduler(mut self, scheduler: impl Scheduler + 'g) -> Self {
        self.scheduler = Box::new(scheduler);
        self
    }

    /// Attaches a per-batch observer (repeatable). Plain
    /// `FnMut(&BatchOutcome)` closures qualify.
    pub fn observer(mut self, observer: impl CampaignObserver + 'g) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Continues from a checkpoint instead of a fresh state. The factory
    /// must elaborate the same coverage space the snapshot was taken
    /// from.
    pub fn resume(mut self, snapshot: CampaignSnapshot) -> Self {
        self.resume_from = Some(snapshot);
        self
    }

    /// Checkpoints the campaign to `path` every `every_batches` batches
    /// during [`Campaign::run_until`], through the atomic temp+rename
    /// writer in [`crate::persist`] — so long runs are durable without a
    /// caller-driven `step_batch` loop. Each checkpoint is a mid-run
    /// snapshot (no end-of-session history point), exactly what
    /// [`CampaignBuilder::resume`] expects.
    ///
    /// # Panics
    ///
    /// Panics if `every_batches == 0`. `run_until` panics if a
    /// checkpoint write fails — a durability guarantee that silently
    /// stopped holding is worse than a dead campaign.
    pub fn auto_checkpoint(mut self, path: impl Into<PathBuf>, every_batches: usize) -> Self {
        assert!(every_batches > 0, "checkpoint cadence must be positive");
        self.auto_checkpoint = Some((path.into(), every_batches));
        self
    }

    /// Attaches a telemetry sink: batch spans, scheduler pick/reward
    /// events, checkpoint durations, and throughput counters flow into
    /// it. Telemetry is strictly observational — it never touches the
    /// campaign's RNG streams or snapshot content, so a run with any
    /// sink (or the default disabled one) produces bit-identical
    /// results; wall-clock readings exist only in the sink's output.
    pub fn telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// Checkpoint-lineage depth for [`CampaignBuilder::auto_checkpoint`]
    /// (default 2): each write first rotates the previous document to
    /// `{path}.1`, the one before to `{path}.2`, and so on, so
    /// [`crate::persist::load_latest_valid`] can fall back past a
    /// checkpoint torn by the very crash being recovered from. 0 keeps
    /// only the newest file (the overwrite-in-place behaviour of v4).
    pub fn checkpoint_lineage(mut self, keep: usize) -> Self {
        self.checkpoint_keep = keep;
        self
    }

    /// Probes the DUT, restores or initialises state, and spawns the
    /// worker pool.
    ///
    /// # Panics
    ///
    /// Panics if no generator was added, if `workers == 0` or
    /// `batch_size == 0`, or if a resume snapshot does not match the
    /// session being built: different coverage space, different DUT,
    /// different generator line-up, a different scheduler kind, or
    /// scheduler arm statistics for more arms than there are generators.
    pub fn build(mut self) -> Campaign<'g> {
        assert!(!self.generators.is_empty(), "campaign needs at least one generator");
        assert!(self.cfg.workers > 0 && self.cfg.batch_size > 0, "degenerate campaign config");

        let probe = (self.factory)();
        let space = probe.space().clone();
        let dut_name = probe.name().to_string();
        drop(probe);

        let fresh_stats = || {
            self.generators
                .iter()
                .map(|g| GeneratorStats {
                    name: g.name().to_string(),
                    batches: 0,
                    tests: 0,
                    new_bins: 0,
                    cycles: 0,
                })
                .collect::<Vec<_>>()
        };
        let (
            calculator,
            log,
            history,
            gen_stats,
            tests_run,
            batches_run,
            total_cycles,
            since_gain,
            wall,
            stopped_by,
        ) = match self.resume_from {
            Some(snapshot) => {
                assert_eq!(
                    snapshot.calculator.total().space().fingerprint(),
                    space.fingerprint(),
                    "resume snapshot was taken on a different coverage space"
                );
                assert_eq!(snapshot.dut, dut_name, "resume snapshot was taken on a different DUT");
                let names: Vec<&str> = self.generators.iter().map(|g| g.name()).collect();
                let snapshot_names: Vec<&str> =
                    snapshot.gen_stats.iter().map(|s| s.name.as_str()).collect();
                assert_eq!(
                    names, snapshot_names,
                    "resume snapshot was taken with a different generator line-up"
                );
                // Restore scheduler state so arm statistics (and the
                // explore/exploit RNG stream) continue instead of
                // resetting to zero. Arms are recorded lazily, so a
                // snapshot may carry fewer arms than generators — never
                // more.
                assert!(
                    snapshot.scheduler.arms.len() <= self.generators.len(),
                    "resume snapshot has scheduler statistics for {} arms but the \
                     line-up has {} generators",
                    snapshot.scheduler.arms.len(),
                    self.generators.len()
                );
                self.scheduler.import_state(&snapshot.scheduler);
                // Restore each generator's accumulated state (retained
                // seeds, trained weights, RNG streams). The line-up
                // already matched by name; the state vector is aligned
                // with it.
                assert_eq!(
                    snapshot.gen_states.len(),
                    self.generators.len(),
                    "resume snapshot carries generator state for {} generators but the \
                     line-up has {}",
                    snapshot.gen_states.len(),
                    self.generators.len()
                );
                for (generator, state) in self.generators.iter_mut().zip(&snapshot.gen_states) {
                    if let Some(state) = state {
                        generator.import_state(state);
                    }
                }
                (
                    snapshot.calculator,
                    snapshot.log,
                    snapshot.history,
                    snapshot.gen_stats,
                    snapshot.tests_run,
                    snapshot.batches_run,
                    snapshot.total_cycles,
                    snapshot.batches_since_gain,
                    snapshot.wall,
                    snapshot.stopped_by,
                )
            }
            None => (
                Calculator::new(&space),
                MismatchLog::new(),
                Vec::new(),
                fresh_stats(),
                0,
                0,
                0,
                0,
                Duration::ZERO,
                None,
            ),
        };

        let (job_tx, job_rx) = channel::unbounded::<Job>();
        let (result_tx, result_rx) = channel::unbounded::<JobResult>();
        let workers = (0..self.cfg.workers)
            .map(|_| {
                let factory = Arc::clone(&self.factory);
                let job_rx = job_rx.clone();
                let result_tx = result_tx.clone();
                let golden_cfg = self.cfg.golden;
                let detect = self.cfg.detect_mismatches;
                std::thread::spawn(move || {
                    let mut dut = factory();
                    let mut golden = SoftCoreRunner::new(golden_cfg);
                    while let Ok(Job { index, image, scratch }) = job_rx.recv() {
                        let Scratch { mut run, golden: mut golden_trace } = scratch;
                        dut.run_into(&image, &mut run);
                        if detect {
                            golden.run_into(&image, &mut golden_trace);
                        }
                        let result = JobResult {
                            index,
                            image,
                            run,
                            golden: golden_trace,
                            ran_golden: detect,
                        };
                        if result_tx.send(result).is_err() {
                            break;
                        }
                    }
                })
            })
            .collect();
        // The workers own their clones; dropping ours means a dead pool
        // surfaces as a recv error instead of a deadlock.
        drop(result_tx);
        drop(job_rx);

        let covered_last = calculator.total_covered();

        Campaign {
            harness: PrecompiledHarness::new(self.cfg.harness),
            space,
            image_pool: Vec::new(),
            scratch_pool: Vec::new(),
            seed_pool: Vec::new(),
            seed_revisions: Vec::new(),
            auto_checkpoint: self.auto_checkpoint,
            checkpoint_keep: self.checkpoint_keep,
            telemetry: self.telemetry,
            cfg: self.cfg,
            dut_name,
            generators: self.generators,
            gen_stats,
            scheduler: self.scheduler,
            observers: self.observers,
            calculator,
            log,
            history,
            covered_last,
            tests_run,
            batches_run,
            total_cycles,
            batches_since_gain: since_gain,
            wall_offset: wall,
            started: Instant::now(),
            stopped_by,
            job_tx: Some(job_tx),
            result_rx,
            workers,
        }
    }
}

/// A live fuzzing session: owned worker pool, accumulated coverage and
/// mismatch state, steppable batch by batch. Built by [`CampaignBuilder`];
/// workers shut down on drop.
pub struct Campaign<'g> {
    cfg: CampaignConfig,
    /// Prologue/epilogue assembled once for the whole session.
    harness: PrecompiledHarness,
    /// The probed coverage space (scratch coverage maps are built over it).
    space: Arc<Space>,
    /// Recycled image buffers (filled by `PrecompiledHarness::build_into`).
    image_pool: Vec<Vec<u8>>,
    /// Recycled per-test result buffers.
    scratch_pool: Vec<Scratch>,
    /// Recycled cross-arm seed-exchange buffer.
    seed_pool: Vec<Vec<u32>>,
    /// Per-arm `seeds_revision` values at the last exchange — the change
    /// gate that keeps no-new-seed batches clone-free.
    seed_revisions: Vec<u64>,
    /// Periodic durable checkpoints during `run_until` (path, cadence).
    auto_checkpoint: Option<(PathBuf, usize)>,
    /// Rotated lineage depth for those checkpoints.
    checkpoint_keep: usize,
    /// Observational instrumentation; never part of snapshots.
    telemetry: TelemetrySink,
    dut_name: String,
    generators: Vec<Box<dyn InputGenerator + 'g>>,
    gen_stats: Vec<GeneratorStats>,
    scheduler: Box<dyn Scheduler + 'g>,
    observers: Vec<Box<dyn CampaignObserver + 'g>>,
    calculator: Calculator,
    log: MismatchLog,
    history: Vec<CoveragePoint>,
    /// Covered bins at the last recorded history point.
    covered_last: usize,
    tests_run: usize,
    batches_run: usize,
    total_cycles: u64,
    batches_since_gain: usize,
    /// Wall time accumulated before this session (resume).
    wall_offset: Duration,
    started: Instant,
    stopped_by: Option<StopCondition>,
    job_tx: Option<Sender<Job>>,
    result_rx: Receiver<JobResult>,
    workers: Vec<JoinHandle<()>>,
}

impl<'g> Campaign<'g> {
    /// Tests executed so far.
    pub fn tests_run(&self) -> usize {
        self.tests_run
    }

    /// Batches executed so far.
    pub fn batches_run(&self) -> usize {
        self.batches_run
    }

    /// Cumulative coverage percentage.
    pub fn coverage_pct(&self) -> f64 {
        self.calculator.total_percent()
    }

    /// Total simulated DUT cycles so far.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Wall-clock for the whole session, resume-aware.
    pub fn wall(&self) -> Duration {
        self.wall_offset + self.started.elapsed()
    }

    /// Per-generator statistics.
    pub fn generator_stats(&self) -> &[GeneratorStats] {
        &self.gen_stats
    }

    /// Runs one batch of `config.batch_size` tests.
    pub fn step_batch(&mut self) -> BatchOutcome {
        self.step_batch_of(self.cfg.batch_size)
    }

    /// Runs one batch of exactly `n` tests.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the worker pool died.
    pub fn step_batch_of(&mut self, n: usize) -> BatchOutcome {
        assert!(n > 0, "empty batch");
        let batch_span = self.telemetry.now();
        let arm = self.scheduler.pick(self.generators.len());
        assert!(
            arm < self.generators.len(),
            "scheduler picked generator {arm} of {}",
            self.generators.len()
        );
        if self.telemetry.is_enabled() {
            self.telemetry.event(
                "scheduler_pick",
                vec![("arm", arm.into()), ("name", self.gen_stats[arm].name.as_str().into())],
            );
        }

        let batch = self.generators[arm].next_batch(n);
        assert_eq!(batch.len(), n, "generator returned a short batch");
        let job_tx = self.job_tx.as_ref().expect("worker pool alive");
        for (index, body) in batch.iter().enumerate() {
            // Recycled buffers: the image is rebuilt from the precompiled
            // prologue, the scratch is fully overwritten by the worker.
            let mut image = self.image_pool.pop().unwrap_or_default();
            self.harness.build_into(body, &mut image);
            let scratch = self.scratch_pool.pop().unwrap_or_else(|| Scratch::new(&self.space));
            job_tx.send(Job { index, image, scratch }).expect("workers alive");
        }

        // Collect once, then restore submission order; worker scheduling
        // cannot influence results after this point.
        let mut results: Vec<JobResult> =
            (0..n).map(|_| self.result_rx.recv().expect("workers alive")).collect();
        results.sort_unstable_by_key(|r| r.index);

        let cycles_before = self.total_cycles;
        let raw_before = self.log.raw_count();
        let mut mux: Vec<usize> = Vec::with_capacity(n);
        let mut cycles_at: Vec<u64> = Vec::with_capacity(n);
        let mut fingerprints: Vec<u64> = Vec::with_capacity(n);
        let mut mismatched: Vec<bool> = Vec::with_capacity(n);
        for JobResult { run, golden, ran_golden, .. } in &results {
            self.total_cycles += run.cycles;
            cycles_at.push(self.total_cycles);
            mux.push(run.coverage.covered_bins_of_kind(PointKind::MuxSelect));
            fingerprints.push(run.coverage.content_hash());
            if *ran_golden {
                let diffs = diff_traces(golden, &run.trace);
                mismatched.push(!diffs.is_empty());
                self.log.record(diffs);
            } else {
                mismatched.push(false);
            }
        }

        let scores = self.calculator.score_batch_iter(results.iter().map(|r| &r.run.coverage));
        // Everything is scored and diffed: recycle every buffer.
        for JobResult { image, run, golden, .. } in results {
            self.image_pool.push(image);
            self.scratch_pool.push(Scratch { run, golden });
        }
        let feedback: Vec<Feedback> = scores
            .inputs
            .iter()
            .enumerate()
            .map(|(i, s)| Feedback {
                standalone: s.standalone,
                incremental: s.incremental,
                mux_covered: mux[i],
                total_after: s.total_after,
                total_bins: s.total_bins,
                cov_fingerprint: fingerprints[i],
                mismatched: mismatched[i],
            })
            .collect();
        self.generators[arm].observe(&batch, &feedback);

        // Cross-arm corpus sharing (ROADMAP: the paper's §III-A corpus,
        // self-grown): arms that retain seeds publish them, every arm may
        // fold them in — concretely, the evolve arm's coverage frontier
        // becomes the LM arm's prompt pool. Deterministic (corpus order
        // is), so resume-exactness is preserved. Gated on the arms'
        // `seeds_revision` counters, so the common no-new-seed batch
        // clones nothing.
        if self.generators.len() > 1 {
            let changed = self.seed_revisions.len() != self.generators.len()
                || self
                    .generators
                    .iter()
                    .zip(&self.seed_revisions)
                    .any(|(g, &r)| g.seeds_revision() != r);
            if changed {
                self.seed_revisions.clear();
                self.seed_revisions.extend(self.generators.iter().map(|g| g.seeds_revision()));
                self.seed_pool.clear();
                for generator in &self.generators {
                    generator.contribute_seeds(&mut self.seed_pool);
                }
                if !self.seed_pool.is_empty() {
                    for generator in &mut self.generators {
                        generator.absorb_seeds(&self.seed_pool);
                    }
                }
            }
        }

        // Exact history: one point per coverage-advancing input.
        let wall = self.wall();
        for (i, (input, &sim_cycles)) in scores.inputs.iter().zip(&cycles_at).enumerate() {
            if input.total_after > self.covered_last {
                self.covered_last = input.total_after;
                self.history.push(CoveragePoint {
                    tests: self.tests_run + i + 1,
                    covered_bins: input.total_after,
                    coverage_pct: input.total_percent(),
                    sim_cycles,
                    wall,
                });
            }
        }

        self.tests_run += n;
        let batch_index = self.batches_run;
        self.batches_run += 1;
        if scores.batch_gain > 0 {
            self.batches_since_gain = 0;
        } else {
            self.batches_since_gain += 1;
        }
        // MABFuzz-style reward: incremental coverage per test, with the
        // batch's simulated-cycle cost attached for cost-normalising
        // schedulers (plain ones drop it).
        self.scheduler.update_costed(
            arm,
            scores.batch_gain as f64 / n as f64,
            self.total_cycles - cycles_before,
        );
        if self.telemetry.is_enabled() {
            self.telemetry.event(
                "scheduler_reward",
                vec![
                    ("arm", arm.into()),
                    ("reward", (scores.batch_gain as f64 / n as f64).into()),
                    ("cost_cycles", (self.total_cycles - cycles_before).into()),
                ],
            );
        }
        let stats = &mut self.gen_stats[arm];
        stats.batches += 1;
        stats.tests += n;
        stats.new_bins += scores.batch_gain;
        stats.cycles += self.total_cycles - cycles_before;

        let outcome = BatchOutcome {
            batch_index,
            generator_index: arm,
            generator: self.gen_stats[arm].name.clone(),
            tests: n,
            tests_total: self.tests_run,
            new_bins: scores.batch_gain,
            covered_bins: scores.total_after,
            coverage_pct: self.calculator.total_percent(),
            batch_cycles: self.total_cycles - cycles_before,
            total_cycles: self.total_cycles,
            new_mismatches: self.log.raw_count() - raw_before,
            total_mismatches: self.log.raw_count(),
            feedback,
            wall,
        };
        if self.telemetry.is_enabled() {
            let batch_us = self
                .telemetry
                .observe_since(chatfuzz_telemetry::names::CAMPAIGN_BATCH_LATENCY_US, batch_span);
            use chatfuzz_telemetry::names;
            self.telemetry.counter_add(names::CAMPAIGN_TESTS, n as u64);
            self.telemetry.counter_add(names::CAMPAIGN_CYCLES, outcome.batch_cycles);
            self.telemetry.counter_add(names::CAMPAIGN_MISMATCHES, outcome.new_mismatches as u64);
            self.telemetry.gauge_set(names::CAMPAIGN_COVERAGE_BINS, outcome.covered_bins as i64);
            // The LM arms sample one 32-bit instruction per token.
            if outcome.generator.starts_with("chatfuzz") {
                let tokens: usize = batch.iter().map(|b| b.len() / 4).sum();
                self.telemetry.counter_add(names::CAMPAIGN_LM_TOKENS, tokens as u64);
            }
            self.telemetry.event(
                "batch",
                vec![
                    ("index", outcome.batch_index.into()),
                    ("arm", outcome.generator.as_str().into()),
                    ("tests", n.into()),
                    ("new_bins", outcome.new_bins.into()),
                    ("covered_bins", outcome.covered_bins.into()),
                    ("cycles", outcome.batch_cycles.into()),
                    ("new_mismatches", outcome.new_mismatches.into()),
                    ("duration_us", batch_us.into()),
                ],
            );
        }
        for observer in &mut self.observers {
            observer.on_batch(&outcome);
        }
        outcome
    }

    /// Runs batches until any stop condition triggers, then returns the
    /// report. Resumable: call again with new conditions to continue the
    /// same session. With [`CampaignBuilder::auto_checkpoint`], a durable
    /// snapshot lands on disk every N batches along the way.
    ///
    /// # Panics
    ///
    /// Panics if `stops` is empty or contains the unsatisfiable
    /// `Plateau(0)` (either way the campaign could never return), or if
    /// an auto-checkpoint write fails.
    pub fn run_until(&mut self, stops: &[StopCondition]) -> CampaignReport {
        assert!(!stops.is_empty(), "no stop condition — the campaign would never end");
        assert!(
            !stops.contains(&StopCondition::Plateau(0)),
            "Plateau(0) never triggers — use Plateau(1) to stop after the first \
             gainless batch"
        );
        loop {
            if let Some(reason) = self.stop_reason(stops) {
                self.stopped_by = Some(reason);
                break;
            }
            let n = self.next_batch_size(stops);
            self.step_batch_of(n);
            // Periodic durable checkpoint (atomic temp+rename): taken
            // *before* the session endpoint is pushed, so a resumed
            // campaign continues from a mid-run state exactly like the
            // caller-driven `step_batch` + `snapshot` pattern.
            if let Some((path, every)) = &self.auto_checkpoint {
                if self.batches_run.is_multiple_of(*every) {
                    let snapshot = self.snapshot();
                    let write_span = self.telemetry.now();
                    // Rotate the lineage once; transient io errors
                    // (EINTR and friends) get a few plain-save retries
                    // on top of the already-rotated lineage. Anything
                    // persistent still panics — a durability guarantee
                    // that silently stopped holding is worse than a
                    // dead campaign.
                    let mut result = crate::persist::save_snapshot_rotated(
                        path,
                        &snapshot,
                        self.checkpoint_keep,
                    );
                    for backoff_ms in [10u64, 20, 40] {
                        let transient = matches!(
                            result.as_ref().map_err(|e| e.root()),
                            Err(crate::persist::PersistError::Io(io))
                                if io.kind() == std::io::ErrorKind::Interrupted
                        );
                        if !transient {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(backoff_ms));
                        result = crate::persist::save_snapshot(path, &snapshot);
                    }
                    result.unwrap_or_else(|e| panic!("auto-checkpoint write failed: {e}"));
                    if self.telemetry.is_enabled() {
                        // Write metrics (duration histogram, op counter)
                        // are recorded inside `persist::save_snapshot`
                        // against the process-global sink; this is the
                        // timeline view of the same write.
                        let write_us = write_span.map_or(0, |s| s.elapsed().as_micros() as u64);
                        self.telemetry.event(
                            "checkpoint_write",
                            vec![
                                ("tests", self.tests_run.into()),
                                ("batch", self.batches_run.into()),
                                ("duration_us", write_us.into()),
                            ],
                        );
                    }
                }
            }
        }
        self.push_endpoint();
        self.report()
    }

    /// The first stop condition currently satisfied, if any.
    pub fn stop_reason(&self, stops: &[StopCondition]) -> Option<StopCondition> {
        stops.iter().copied().find(|stop| match *stop {
            StopCondition::Tests(budget) => self.tests_run >= budget,
            StopCondition::SimCycles(budget) => self.total_cycles >= budget,
            StopCondition::WallClock(deadline) => self.wall() >= deadline,
            StopCondition::CoveragePct(pct) => self.calculator.total_percent() >= pct,
            StopCondition::Plateau(batches) => batches > 0 && self.batches_since_gain >= batches,
        })
    }

    /// Batch size for the next step, clamped so a test budget is hit
    /// exactly.
    fn next_batch_size(&self, stops: &[StopCondition]) -> usize {
        let mut n = self.cfg.batch_size;
        for stop in stops {
            if let StopCondition::Tests(budget) = stop {
                n = n.min(budget.saturating_sub(self.tests_run));
            }
        }
        n.max(1)
    }

    /// Records the session endpoint in the history (idempotent per test
    /// count; keeps `tests` strictly increasing).
    fn push_endpoint(&mut self) {
        if self.tests_run == 0 {
            return;
        }
        if self.history.last().map(|p| p.tests) == Some(self.tests_run) {
            return;
        }
        self.history.push(CoveragePoint {
            tests: self.tests_run,
            covered_bins: self.calculator.total_covered(),
            coverage_pct: self.calculator.total_percent(),
            sim_cycles: self.total_cycles,
            wall: self.wall(),
        });
    }

    /// The report for everything accumulated so far (callable at any
    /// point of the session).
    pub fn report(&self) -> CampaignReport {
        let generator =
            self.gen_stats.iter().map(|s| s.name.as_str()).collect::<Vec<_>>().join("+");
        CampaignReport {
            generator,
            dut: self.dut_name.clone(),
            history: self.history.clone(),
            final_coverage_pct: self.calculator.total_percent(),
            tests_run: self.tests_run,
            batches_run: self.batches_run,
            raw_mismatches: self.log.raw_count(),
            unique_mismatches: self.log.unique().into_iter().cloned().collect(),
            bugs: self.log.bugs_found(),
            total_cycles: self.total_cycles,
            wall: self.wall(),
            generator_stats: self.gen_stats.clone(),
            stopped_by: self.stopped_by,
        }
    }

    /// Checkpoints the campaign's accumulated state. Pair with
    /// [`CampaignBuilder::resume`] to continue in a later session.
    pub fn snapshot(&self) -> CampaignSnapshot {
        CampaignSnapshot {
            dut: self.dut_name.clone(),
            calculator: self.calculator.clone(),
            log: self.log.clone(),
            history: self.history.clone(),
            gen_stats: self.gen_stats.clone(),
            scheduler: self.scheduler.export_state(),
            gen_states: self.generators.iter().map(|g| g.export_state()).collect(),
            tests_run: self.tests_run,
            batches_run: self.batches_run,
            total_cycles: self.total_cycles,
            batches_since_gain: self.batches_since_gain,
            wall: self.wall(),
            stopped_by: self.stopped_by,
        }
    }
}

impl Drop for Campaign<'_> {
    fn drop(&mut self) {
        // Closing the job channel releases the workers.
        drop(self.job_tx.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_baselines::{EpsilonGreedy, MutatorConfig, RandomRegression, TheHuzz};
    use chatfuzz_rtl::{BugConfig, Rocket, RocketConfig};

    fn rocket_factory(bugs: BugConfig) -> DutFactory {
        Arc::new(move || {
            Box::new(Rocket::new(RocketConfig { bugs, ..Default::default() })) as Box<dyn Dut>
        })
    }

    fn small_builder<'g>() -> CampaignBuilder<'g> {
        CampaignBuilder::from_factory(rocket_factory(BugConfig::all_on())).batch_size(16).workers(4)
    }

    /// One builder-API campaign to a test budget (the shape the removed
    /// `run_campaign` wrapper provided).
    fn budget_report(
        generator: impl InputGenerator + 'static,
        bugs: BugConfig,
        tests: usize,
    ) -> CampaignReport {
        CampaignBuilder::from_factory(rocket_factory(bugs))
            .batch_size(16)
            .workers(4)
            .generator(generator)
            .build()
            .run_until(&[StopCondition::Tests(tests)])
    }

    #[test]
    fn campaign_accumulates_monotone_coverage() {
        let report = budget_report(TheHuzz::new(MutatorConfig::default()), BugConfig::all_on(), 48);
        assert_eq!(report.tests_run, 48);
        assert!(report.final_coverage_pct > 20.0, "got {}", report.final_coverage_pct);
        assert!(!report.history.is_empty());
        for pair in report.history.windows(2) {
            assert!(pair[1].coverage_pct >= pair[0].coverage_pct, "monotone");
            assert!(pair[1].tests > pair[0].tests);
        }
        assert!(report.total_cycles > 0);
    }

    #[test]
    fn bug_free_rocket_yields_zero_mismatches() {
        let report =
            budget_report(TheHuzz::new(MutatorConfig::default()), BugConfig::all_off(), 48);
        assert_eq!(report.raw_mismatches, 0, "no injected bugs, no mismatches");
        assert!(report.bugs.is_empty());
    }

    #[test]
    fn campaign_is_deterministic() {
        let run = || budget_report(RandomRegression::new(5, 16), BugConfig::all_on(), 48);
        let a = run();
        let b = run();
        assert_eq!(a.final_coverage_pct, b.final_coverage_pct);
        assert_eq!(a.raw_mismatches, b.raw_mismatches);
        assert_eq!(a.total_cycles, b.total_cycles);
    }

    #[test]
    fn single_worker_matches_parallel_results() {
        let run = |workers| {
            CampaignBuilder::from_factory(rocket_factory(BugConfig::all_on()))
                .batch_size(16)
                .workers(workers)
                .generator(RandomRegression::new(5, 16))
                .build()
                .run_until(&[StopCondition::Tests(48)])
        };
        let a = run(1);
        let b = run(8);
        assert_eq!(a.final_coverage_pct, b.final_coverage_pct);
        assert_eq!(a.raw_mismatches, b.raw_mismatches);
    }

    #[test]
    fn step_batch_accumulates_and_reports() {
        let mut campaign =
            small_builder().generator(TheHuzz::new(MutatorConfig::default())).build();
        let first = campaign.step_batch();
        assert_eq!(first.tests, 16);
        assert_eq!(first.tests_total, 16);
        assert!(first.new_bins > 0, "a first batch always finds bins");
        assert_eq!(first.generator, "thehuzz");
        let second = campaign.step_batch();
        assert_eq!(second.tests_total, 32);
        assert!(second.covered_bins >= first.covered_bins);
        assert_eq!(campaign.tests_run(), 32);
        assert_eq!(campaign.batches_run(), 2);
    }

    #[test]
    fn run_until_tests_budget_is_exact_even_off_batch() {
        let mut campaign =
            small_builder().generator(TheHuzz::new(MutatorConfig::default())).build();
        let report = campaign.run_until(&[StopCondition::Tests(40)]);
        assert_eq!(report.tests_run, 40, "16 + 16 + clamped 8");
        assert_eq!(report.stopped_by, Some(StopCondition::Tests(40)));
        assert_eq!(report.batches_run, 3);
    }

    #[test]
    fn run_until_is_resumable_and_wall_accumulates() {
        let mut campaign =
            small_builder().generator(TheHuzz::new(MutatorConfig::default())).build();
        let first = campaign.run_until(&[StopCondition::Tests(16)]);
        assert_eq!(first.tests_run, 16);
        let second = campaign.run_until(&[StopCondition::Tests(48)]);
        assert_eq!(second.tests_run, 48);
        assert!(second.final_coverage_pct >= first.final_coverage_pct);
        assert!(second.wall >= first.wall);
    }

    #[test]
    fn history_records_exact_first_crossings() {
        let mut campaign =
            small_builder().generator(TheHuzz::new(MutatorConfig::default())).build();
        let report = campaign.run_until(&[StopCondition::Tests(48)]);
        // Strictly increasing tests and monotone coverage.
        for pair in report.history.windows(2) {
            assert!(pair[1].tests > pair[0].tests);
            assert!(pair[1].covered_bins >= pair[0].covered_bins);
        }
        // The first point is the first *input* that covered anything — in
        // a 16-test batch that is input #1, not the batch boundary.
        assert_eq!(report.history[0].tests, 1, "first crossing is input-exact");
        // Any threshold between two consecutive points resolves to the
        // exact crossing test, not a later sampling point.
        let target = report.history[0].coverage_pct;
        assert_eq!(report.tests_to_reach(target), Some(report.history[0].tests));
    }

    #[test]
    fn observers_see_every_batch() {
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = std::sync::Arc::clone(&events);
        let mut campaign = small_builder()
            .generator(TheHuzz::new(MutatorConfig::default()))
            .observer(move |outcome: &BatchOutcome| {
                sink.lock().unwrap().push((outcome.batch_index, outcome.tests_total));
            })
            .build();
        campaign.run_until(&[StopCondition::Tests(48)]);
        let seen = events.lock().unwrap().clone();
        assert_eq!(seen, vec![(0, 16), (1, 32), (2, 48)]);
    }

    #[test]
    fn snapshot_resume_matches_uninterrupted_run() {
        let factory = rocket_factory(BugConfig::all_on());
        // Uninterrupted reference.
        let mut reference = CampaignBuilder::from_factory(Arc::clone(&factory))
            .batch_size(16)
            .workers(4)
            .generator(RandomRegression::new(5, 16))
            .build();
        let expected = reference.run_until(&[StopCondition::Tests(64)]);

        // Same campaign, checkpointed halfway. RandomRegression ignores
        // feedback, so recreating it and skipping the consumed batches
        // reproduces the second half's inputs.
        let mut first_half = CampaignBuilder::from_factory(Arc::clone(&factory))
            .batch_size(16)
            .workers(4)
            .generator(RandomRegression::new(5, 16))
            .build();
        first_half.run_until(&[StopCondition::Tests(32)]);
        let snapshot = first_half.snapshot();
        assert_eq!(snapshot.tests_run(), 32);
        drop(first_half);

        let mut generator = RandomRegression::new(5, 16);
        let _skip = generator.next_batch(32); // replay the consumed half
        let mut resumed = CampaignBuilder::from_factory(factory)
            .batch_size(16)
            .workers(4)
            .generator(generator)
            .resume(snapshot)
            .build();
        let report = resumed.run_until(&[StopCondition::Tests(64)]);

        assert_eq!(report.tests_run, expected.tests_run);
        assert_eq!(report.final_coverage_pct, expected.final_coverage_pct);
        assert_eq!(report.raw_mismatches, expected.raw_mismatches);
        assert_eq!(report.total_cycles, expected.total_cycles);
        assert_eq!(
            report.history.iter().map(|p| (p.tests, p.covered_bins)).collect::<Vec<_>>(),
            expected.history.iter().map(|p| (p.tests, p.covered_bins)).collect::<Vec<_>>(),
        );
        // Per-generator stats survive the checkpoint: both halves count.
        assert_eq!(report.generator_stats[0].tests, 64);
        assert_eq!(report.generator_stats[0].batches, 4);
        assert_eq!(report.generator_stats[0].new_bins, expected.generator_stats[0].new_bins);
    }

    #[test]
    fn resume_restores_scheduler_arm_statistics() {
        let factory = rocket_factory(BugConfig::all_on());
        let build = |resume: Option<CampaignSnapshot>, skip: (usize, usize)| {
            let mut g0 = RandomRegression::new(3, 16);
            let mut g1 = RandomRegression::new(9, 16);
            // Fast-forward each generator past the tests it produced
            // before the checkpoint (RandomRegression ignores feedback,
            // so replaying the consumed inputs restores its stream).
            if skip.0 > 0 {
                let _ = g0.next_batch(skip.0);
            }
            if skip.1 > 0 {
                let _ = g1.next_batch(skip.1);
            }
            let mut b = CampaignBuilder::from_factory(Arc::clone(&factory))
                .batch_size(16)
                .workers(4)
                .generator(g0)
                .generator(g1)
                .scheduler(EpsilonGreedy::new(7, 0.3));
            if let Some(snapshot) = resume {
                b = b.resume(snapshot);
            }
            b.build()
        };

        let expected = build(None, (0, 0)).run_until(&[StopCondition::Tests(8 * 16)]);

        let mut first_half = build(None, (0, 0));
        first_half.run_until(&[StopCondition::Tests(4 * 16)]);
        let snapshot = first_half.snapshot();
        // The checkpoint carries non-zero arm statistics…
        assert_eq!(
            snapshot.scheduler_state().arms.iter().map(|a| a.pulls).sum::<u64>(),
            4,
            "one pull per batch recorded"
        );
        // …and resume replays them: rebuild the generators fast-forwarded
        // by what each consumed, then the second half schedules exactly
        // like the uninterrupted run (same bandit decisions, same RNG
        // stream) — impossible if arm statistics reset to zero.
        let consumed = (snapshot.gen_stats[0].tests, snapshot.gen_stats[1].tests);
        drop(first_half);
        let report = build(Some(snapshot), consumed).run_until(&[StopCondition::Tests(8 * 16)]);

        assert_eq!(report.final_coverage_pct, expected.final_coverage_pct);
        assert_eq!(report.total_cycles, expected.total_cycles);
        for (got, want) in report.generator_stats.iter().zip(&expected.generator_stats) {
            assert_eq!(got.batches, want.batches, "per-arm batch counts diverged");
            assert_eq!(got.tests, want.tests);
            assert_eq!(got.new_bins, want.new_bins);
        }
    }

    #[test]
    #[should_panic(expected = "different generator line-up")]
    fn resume_with_mismatched_generators_panics() {
        let factory = rocket_factory(BugConfig::all_on());
        let mut first = CampaignBuilder::from_factory(Arc::clone(&factory))
            .batch_size(16)
            .workers(2)
            .generator(RandomRegression::new(5, 16))
            .build();
        first.step_batch();
        let snapshot = first.snapshot();
        drop(first);
        CampaignBuilder::from_factory(factory)
            .generator(TheHuzz::new(MutatorConfig::default()))
            .resume(snapshot)
            .build();
    }

    #[test]
    #[should_panic(expected = "Plateau(0) never triggers")]
    fn run_until_rejects_unsatisfiable_plateau() {
        let mut campaign = small_builder().generator(RandomRegression::new(5, 16)).build();
        campaign.run_until(&[StopCondition::Plateau(0)]);
    }

    #[test]
    fn auto_checkpoint_writes_at_the_cadence_and_resumes_exactly() {
        let dir = std::env::temp_dir().join(format!("chatfuzz-autockpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("auto.json");

        // Cadence 2: after 4 batches of 16 the file holds batch 4's
        // state; run_until(Tests(64)) stops right there.
        let mut campaign = CampaignBuilder::from_factory(rocket_factory(BugConfig::all_on()))
            .batch_size(16)
            .workers(2)
            .generator(RandomRegression::new(5, 16))
            .auto_checkpoint(&path, 2)
            .build();
        let expected = campaign.run_until(&[StopCondition::Tests(64)]);
        drop(campaign);

        let space = rocket_factory(BugConfig::all_on())().space().clone();
        let snapshot = crate::persist::load_snapshot(&path, &space).expect("checkpoint exists");
        assert_eq!(snapshot.tests_run(), 64, "last cadence checkpoint covers the whole run");
        assert_eq!(snapshot.batches_run(), 4);

        // The checkpoint is a valid resume point: continuing from it
        // matches continuing the live session.
        let mut replayed = RandomRegression::new(5, 16);
        let _ = replayed.next_batch(64);
        let mut resumed = CampaignBuilder::from_factory(rocket_factory(BugConfig::all_on()))
            .batch_size(16)
            .workers(2)
            .generator(replayed)
            .resume(snapshot)
            .build();
        let report = resumed.run_until(&[StopCondition::Tests(96)]);
        assert_eq!(report.tests_run, 96);
        assert!(report.final_coverage_pct >= expected.final_coverage_pct);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "checkpoint cadence must be positive")]
    fn auto_checkpoint_rejects_zero_cadence() {
        let _ = small_builder().auto_checkpoint("never.json", 0);
    }

    #[test]
    fn snapshot_carries_no_state_for_stateless_generators() {
        let mut campaign = small_builder().generator(RandomRegression::new(5, 16)).build();
        campaign.step_batch();
        let snapshot = campaign.snapshot();
        assert_eq!(snapshot.generator_states().len(), 1);
        assert!(snapshot.generator_states()[0].is_none());
    }

    #[test]
    fn feedback_carries_fingerprints_and_mismatch_flags() {
        use std::sync::{Arc as StdArc, Mutex};
        let seen: StdArc<Mutex<Vec<Feedback>>> = StdArc::new(Mutex::new(Vec::new()));

        struct Probe {
            inner: RandomRegression,
            sink: StdArc<Mutex<Vec<Feedback>>>,
        }
        impl InputGenerator for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
                self.inner.next_batch(n)
            }
            fn observe(&mut self, _batch: &[Vec<u8>], feedback: &[Feedback]) {
                self.sink.lock().unwrap().extend_from_slice(feedback);
            }
        }

        let mut campaign = CampaignBuilder::from_factory(rocket_factory(BugConfig::all_on()))
            .batch_size(16)
            .workers(2)
            .generator(Probe { inner: RandomRegression::new(5, 16), sink: StdArc::clone(&seen) })
            .build();
        campaign.run_until(&[StopCondition::Tests(64)]);

        let feedback = seen.lock().unwrap().clone();
        assert_eq!(feedback.len(), 64);
        // Every input ran something, so every standalone coverage set is
        // non-empty and fingerprinted.
        assert!(feedback.iter().all(|f| f.cov_fingerprint != 0));
        // Identical coverage sets share a fingerprint; the batch is not
        // all-identical.
        let unique: std::collections::HashSet<u64> =
            feedback.iter().map(|f| f.cov_fingerprint).collect();
        assert!(unique.len() > 1, "fingerprints distinguish coverage sets");
        // A buggy Rocket under random fuzzing raises mismatches; the
        // flags must agree with the campaign's raw count in sum.
        let report = campaign.report();
        let flagged = feedback.iter().filter(|f| f.mismatched).count();
        assert!(flagged > 0, "buggy DUT flags mismatching inputs");
        assert!(report.raw_mismatches >= flagged, "flags never exceed recorded mismatches");
    }

    #[test]
    fn multi_generator_round_robin_interleaves_and_tracks_stats() {
        let mut campaign = small_builder()
            .generator(TheHuzz::new(MutatorConfig::default()))
            .generator(RandomRegression::new(5, 16))
            .build();
        let report = campaign.run_until(&[StopCondition::Tests(64)]);
        assert_eq!(report.generator, "thehuzz+random");
        assert_eq!(report.generator_stats.len(), 2);
        assert_eq!(report.generator_stats[0].batches, 2);
        assert_eq!(report.generator_stats[1].batches, 2);
        assert_eq!(report.generator_stats[0].tests, 32);
        assert!(report.generator_stats[0].new_bins > 0);
    }

    #[test]
    fn epsilon_greedy_schedules_toward_the_paying_generator() {
        let mut campaign = small_builder()
            .generator(TheHuzz::new(MutatorConfig::default()))
            .generator(RandomRegression::new(5, 16))
            .scheduler(EpsilonGreedy::new(3, 0.2))
            .build();
        let report = campaign.run_until(&[StopCondition::Tests(12 * 16)]);
        let stats = &report.generator_stats;
        assert_eq!(stats.iter().map(|s| s.batches).sum::<usize>(), 12);
        // Both arms were tried at least once; totals add up.
        assert!(stats.iter().all(|s| s.batches >= 1));
        assert_eq!(stats.iter().map(|s| s.tests).sum::<usize>(), report.tests_run);
    }

    #[test]
    fn plateau_and_coverage_stops_trigger() {
        // A bug-free Rocket saturates early with random inputs, so a
        // plateau stop fires long before a huge test budget.
        let mut campaign = CampaignBuilder::from_factory(rocket_factory(BugConfig::all_off()))
            .batch_size(16)
            .workers(4)
            .detect_mismatches(false)
            .generator(RandomRegression::new(5, 16))
            .build();
        let report =
            campaign.run_until(&[StopCondition::Tests(100_000), StopCondition::Plateau(3)]);
        assert_eq!(report.stopped_by, Some(StopCondition::Plateau(3)));
        assert!(report.tests_run < 100_000);

        // Coverage stop: ask for a level the first batches exceed.
        let mut campaign2 = small_builder()
            .detect_mismatches(false)
            .generator(TheHuzz::new(MutatorConfig::default()))
            .build();
        let report2 =
            campaign2.run_until(&[StopCondition::Tests(100_000), StopCondition::CoveragePct(10.0)]);
        assert_eq!(report2.stopped_by, Some(StopCondition::CoveragePct(10.0)));
        assert!(report2.final_coverage_pct >= 10.0);
    }

    #[test]
    fn cycle_budget_stops_the_session() {
        let mut campaign = small_builder()
            .detect_mismatches(false)
            .generator(TheHuzz::new(MutatorConfig::default()))
            .build();
        let probe = campaign.step_batch();
        let budget = probe.total_cycles + probe.batch_cycles; // ~2 more batches
        let report =
            campaign.run_until(&[StopCondition::Tests(100_000), StopCondition::SimCycles(budget)]);
        assert_eq!(report.stopped_by, Some(StopCondition::SimCycles(budget)));
        assert!(report.total_cycles >= budget);
        assert!(report.tests_run < 100_000);
    }

    #[test]
    fn wall_clock_deadline_stops_the_session() {
        let mut campaign = small_builder()
            .detect_mismatches(false)
            .generator(TheHuzz::new(MutatorConfig::default()))
            .build();
        let report = campaign.run_until(&[
            StopCondition::Tests(100_000_000),
            StopCondition::WallClock(Duration::from_millis(200)),
        ]);
        assert_eq!(report.stopped_by, Some(StopCondition::WallClock(Duration::from_millis(200))));
        assert!(report.wall >= Duration::from_millis(200));
    }
}
