//! Horizontally sharded campaigns.
//!
//! One fuzzing campaign becomes N *shard* sub-campaigns that run the same
//! DUT with disjoint input streams and merge their results — the TheHuzz
//! scaling recipe ("many simulator instances, one coverage report")
//! lifted above the single-process worker pool that [`Campaign`] already
//! owns. Shards are embarrassingly parallel: no coordination during the
//! run, one deterministic merge at the end.
//!
//! # RNG stream scheme
//!
//! Shard `i` of a campaign with base seed `b` seeds its generators with
//! [`shard_seed`]`(b, i)` — a SplitMix64 finalisation of `b` mixed with
//! the shard index. Two properties matter:
//!
//! * **disjoint streams** — the finaliser decorrelates consecutive
//!   indices, so shards never replay each other's inputs;
//! * **count-independence** — shard `i`'s seed does not depend on the
//!   total shard count, so growing a campaign from N to M > N shards
//!   re-runs the first N shards identically and coverage is monotone in
//!   the shard count.
//!
//! # Process model
//!
//! [`ShardRunner`] abstracts *where* a shard runs. [`InProcessRunner`]
//! builds and drives a [`Campaign`] on a thread in this process (the
//! default; cheapest). [`ProcessShardRunner`] spawns a worker
//! sub-process per shard via `std::process::Command` and hands it the
//! shard assignment through the `CHATFUZZ_SHARD_*` environment variables
//! (not argv, so even a libtest binary can be a worker); the worker runs
//! the shard and writes its [`CampaignSnapshot`] with [`crate::persist`],
//! which the parent loads back. [`WorkerRequest::from_env`] is the
//! worker-side half of the protocol; both halves encode and decode
//! through the one [`proto::Assignment`] struct, which other carriers
//! (the orchestrator's filesystem-spool leases) reuse.
//!
//! # Merging
//!
//! [`ShardedOutcome::merged_snapshot`] folds the shard snapshots into one
//! resume-compatible [`CampaignSnapshot`]: coverage maps union
//! ([`CovMap::union`]), mismatch clusters merge with summed counts,
//! per-generator statistics sum, counters sum, wall-clock takes the
//! parallel maximum, and the history keeps shard 0's exact curve followed
//! by one boundary point per additional shard (the union coverage after
//! folding that shard in). Generator state merges half by half:
//! evolutionary corpora union fingerprint-deduped (shard 0's statistics
//! win on collision), while model *weights* stay shard 0's wholesale,
//! since averaging independently trained weights would manufacture a
//! policy no shard ever ran. What the other shards learned is pooled
//! through the learner instead: prompt pools union, pending
//! actor/learner rollout queues union fingerprint-deduped, and every
//! corpus seed a later shard contributed is re-encoded as a
//! reward-weighted replay rollout, so the next publish boundary trains
//! the merged weights on the merged corpus (see
//! `ModelState::learner_queue`). A 1-shard merge is therefore
//! byte-identical (modulo wall clock) to the underlying plain campaign,
//! model state included.
//!
//! # Merge-then-continue
//!
//! Long-lived fleets (the `chatfuzz_orchestrate` crate) don't merge
//! once — they merge on a cadence and keep going. Two more pieces serve
//! that loop: [`ShardedOutcome::merged_snapshot_over_base`] merges
//! shards that all *continued from* a common base snapshot without
//! double-counting the shared prefix, and [`resplit_snapshot`] derives
//! per-lease continuation snapshots from a merged one, reseeding every
//! persisted RNG stream so the new fan-out diverges instead of replaying
//! one stream N times.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;
use std::time::Duration;

use chatfuzz_baselines::{CorpusSeedState, PendingRollout};
use chatfuzz_coverage::{Calculator, CovMap, Space};
use chatfuzz_lm::tokenizer::TokenizerKind;
use chatfuzz_lm::Tokenizer;

use crate::campaign::{Campaign, CampaignReport, CampaignSnapshot, CoveragePoint, StopCondition};
use crate::persist::{self, PersistError};

pub use proto::{ENV_SHARD_COUNT, ENV_SHARD_INDEX, ENV_SHARD_OUT, ENV_SHARD_SEED};

pub mod proto {
    //! The `CHATFUZZ_SHARD_*` worker-assignment protocol, in one place.
    //!
    //! A shard assignment travels from the coordinating process to a
    //! worker as four key/value pairs: index, count, seed, and the path
    //! the worker must write its snapshot to. [`Assignment`] owns both
    //! directions — [`Assignment::pairs`] is the single encoder (applied
    //! to a child's environment by [`Assignment::apply`], or written
    //! into a lease file by a transport), and [`Assignment::from_lookup`]
    //! is the single decoder ([`Assignment::from_env`] for the
    //! environment-variable carrier). Keeping encode and decode on one
    //! struct means a new carrier — e.g. the orchestrator's
    //! filesystem-spool leases — cannot drift from the runner protocol.

    use std::path::{Path, PathBuf};
    use std::process::Command;

    use super::ShardSpec;

    /// Key carrying the worker's shard index.
    pub const ENV_SHARD_INDEX: &str = "CHATFUZZ_SHARD_INDEX";
    /// Key carrying the total shard count.
    pub const ENV_SHARD_COUNT: &str = "CHATFUZZ_SHARD_COUNT";
    /// Key carrying the shard's derived generator seed.
    pub const ENV_SHARD_SEED: &str = "CHATFUZZ_SHARD_SEED";
    /// Key carrying the path the worker must write its snapshot to.
    pub const ENV_SHARD_OUT: &str = "CHATFUZZ_SHARD_OUT";

    /// One worker assignment: the shard spec plus the snapshot output
    /// path — everything a worker needs to run its slice.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Assignment {
        /// The assigned shard.
        pub spec: ShardSpec,
        /// Where the worker must write its finished snapshot.
        pub out: PathBuf,
    }

    impl Assignment {
        /// Pairs up a spec with its output path.
        pub fn new(spec: ShardSpec, out: impl Into<PathBuf>) -> Assignment {
            Assignment { spec, out: out.into() }
        }

        /// The four protocol pairs, in canonical order. Every carrier —
        /// environment variables, lease files — encodes exactly these.
        pub fn pairs(&self) -> [(&'static str, String); 4] {
            [
                (ENV_SHARD_INDEX, self.spec.index.to_string()),
                (ENV_SHARD_COUNT, self.spec.shards.to_string()),
                (ENV_SHARD_SEED, self.spec.seed.to_string()),
                (ENV_SHARD_OUT, self.out.display().to_string()),
            ]
        }

        /// Applies the assignment to a child process's environment.
        pub fn apply(&self, command: &mut Command) {
            for (key, value) in self.pairs() {
                command.env(key, value);
            }
        }

        /// Decodes an assignment from any key→value carrier. Returns
        /// `None` when [`ENV_SHARD_INDEX`] is absent (the carrier holds
        /// no assignment at all).
        ///
        /// # Panics
        ///
        /// Panics if the carrier holds a partial or malformed
        /// assignment — encoder and decoder disagree about the
        /// protocol, which no in-band recovery fixes.
        pub fn from_lookup(get: impl Fn(&str) -> Option<String>) -> Option<Assignment> {
            let index = get(ENV_SHARD_INDEX)?;
            let read = |key: &str| {
                get(key).unwrap_or_else(|| panic!("worker assignment incomplete: {key} missing"))
            };
            let parse = |key: &str, value: String| {
                value.parse::<u64>().unwrap_or_else(|_| panic!("bad {key}: `{value}`"))
            };
            let spec = ShardSpec {
                index: parse(ENV_SHARD_INDEX, index) as usize,
                shards: parse(ENV_SHARD_COUNT, read(ENV_SHARD_COUNT)) as usize,
                seed: parse(ENV_SHARD_SEED, read(ENV_SHARD_SEED)),
            };
            Some(Assignment { spec, out: PathBuf::from(read(ENV_SHARD_OUT)) })
        }

        /// Decodes the assignment this process was spawned with, if any
        /// (the environment-variable carrier of [`Assignment::from_lookup`]).
        pub fn from_env() -> Option<Assignment> {
            Assignment::from_lookup(|key| std::env::var(key).ok())
        }

        /// The snapshot output path.
        pub fn out_path(&self) -> &Path {
            &self.out
        }
    }
}

/// The seed for shard `shard_index` of a campaign with `base_seed`.
///
/// SplitMix64-style finalisation; independent of the total shard count
/// (see the module docs for why that matters). Shard 0's seed is *not*
/// `base_seed` itself — always route seeds through this function, on
/// both the sharded and the reference side of a comparison.
pub fn shard_seed(base_seed: u64, shard_index: usize) -> u64 {
    let mut z = base_seed ^ (shard_index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One shard's assignment: which slice of the campaign it is and the
/// seed its generators must use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's index in `0..shards`.
    pub index: usize,
    /// Total shards in the campaign.
    pub shards: usize,
    /// Derived generator seed ([`shard_seed`] of the campaign base seed).
    pub seed: u64,
}

/// Why a sharded run failed.
#[derive(Debug)]
pub enum ShardError {
    /// Spawning a worker sub-process failed.
    Spawn {
        /// Shard that failed to spawn.
        shard: usize,
        /// The underlying error.
        error: io::Error,
    },
    /// A worker sub-process exited unsuccessfully.
    Worker {
        /// Shard that failed.
        shard: usize,
        /// Exit status and trailing stderr.
        detail: String,
    },
    /// A worker's snapshot could not be loaded.
    Snapshot {
        /// Shard whose snapshot failed to load.
        shard: usize,
        /// The underlying error.
        error: PersistError,
    },
    /// The shard snapshots disagree (different DUT, space, or generator
    /// line-up) and cannot be merged.
    Merge(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Spawn { shard, error } => {
                write!(f, "shard {shard}: failed to spawn worker: {error}")
            }
            ShardError::Worker { shard, detail } => write!(f, "shard {shard}: {detail}"),
            ShardError::Snapshot { shard, error } => {
                write!(f, "shard {shard}: bad snapshot: {error}")
            }
            ShardError::Merge(msg) => write!(f, "shard merge: {msg}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Where and how one shard runs. Implementations must be shareable
/// across the spawning threads ([`ShardedCampaign::run`] drives all
/// shards in parallel).
pub trait ShardRunner: Sync {
    /// Runs the shard to completion and returns its checkpoint.
    fn run_shard(&self, spec: ShardSpec) -> Result<CampaignSnapshot, ShardError>;
}

/// Runs each shard as a [`Campaign`] on a thread in this process.
///
/// The closure receives the shard's [`ShardSpec`] and returns the fully
/// built campaign plus the stop conditions to drive it to; generators
/// must be seeded from [`ShardSpec::seed`] for the disjoint-stream
/// guarantee to hold.
pub struct InProcessRunner<F> {
    build: F,
}

impl<F> InProcessRunner<F>
where
    F: Fn(ShardSpec) -> (Campaign<'static>, Vec<StopCondition>) + Sync,
{
    /// Wraps a shard-campaign constructor.
    pub fn new(build: F) -> InProcessRunner<F> {
        InProcessRunner { build }
    }
}

impl<F> ShardRunner for InProcessRunner<F>
where
    F: Fn(ShardSpec) -> (Campaign<'static>, Vec<StopCondition>) + Sync,
{
    fn run_shard(&self, spec: ShardSpec) -> Result<CampaignSnapshot, ShardError> {
        let (mut campaign, stops) = (self.build)(spec);
        campaign.run_until(&stops);
        Ok(campaign.snapshot())
    }
}

/// Runs each shard in a spawned worker sub-process.
///
/// The parent sets the `CHATFUZZ_SHARD_*` environment variables on the
/// child (see module docs), waits for it, and loads the snapshot the
/// worker wrote. Any program whose worker path calls
/// [`WorkerRequest::from_env`] qualifies: the `shard_campaign` bench
/// binary, or a libtest binary re-invoking one of its own tests.
pub struct ProcessShardRunner {
    program: PathBuf,
    args: Vec<String>,
    out_dir: PathBuf,
    space: Arc<Space>,
}

impl ProcessShardRunner {
    /// Creates a runner spawning `program`, collecting worker snapshots
    /// under `out_dir` (one `shard-<index>.json` each), and parsing them
    /// over `space` (probe the DUT factory once for it).
    pub fn new(
        program: impl Into<PathBuf>,
        out_dir: impl Into<PathBuf>,
        space: Arc<Space>,
    ) -> ProcessShardRunner {
        ProcessShardRunner {
            program: program.into(),
            args: Vec::new(),
            out_dir: out_dir.into(),
            space,
        }
    }

    /// Appends an argument to the worker command line (repeatable).
    pub fn arg(mut self, arg: impl Into<String>) -> ProcessShardRunner {
        self.args.push(arg.into());
        self
    }

    fn out_path(&self, index: usize) -> PathBuf {
        self.out_dir.join(format!("shard-{index}.json"))
    }
}

impl ShardRunner for ProcessShardRunner {
    fn run_shard(&self, spec: ShardSpec) -> Result<CampaignSnapshot, ShardError> {
        let out = self.out_path(spec.index);
        let _ = std::fs::remove_file(&out); // never load a stale snapshot
        let mut command = Command::new(&self.program);
        command.args(&self.args);
        proto::Assignment::new(spec, &out).apply(&mut command);
        let output =
            command.output().map_err(|error| ShardError::Spawn { shard: spec.index, error })?;
        if !output.status.success() {
            let stderr = String::from_utf8_lossy(&output.stderr);
            let tail: String = stderr
                .lines()
                .rev()
                .take(10)
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect::<Vec<_>>()
                .join("\n");
            return Err(ShardError::Worker {
                shard: spec.index,
                detail: format!("worker exited with {}: {tail}", output.status),
            });
        }
        persist::load_snapshot(&out, &self.space)
            .map_err(|error| ShardError::Snapshot { shard: spec.index, error })
    }
}

/// The worker-side half of the cross-process protocol: the shard
/// assignment this process was spawned with, if any.
#[derive(Debug, Clone)]
pub struct WorkerRequest {
    /// The assigned shard.
    pub spec: ShardSpec,
    out: PathBuf,
}

impl WorkerRequest {
    /// Reads the `CHATFUZZ_SHARD_*` environment variables (via
    /// [`proto::Assignment::from_env`]). Returns `None` when this
    /// process was not spawned as a shard worker.
    ///
    /// # Panics
    ///
    /// Panics if the variables are present but malformed — the spawning
    /// parent and this worker disagree about the protocol, which no
    /// amount of in-band recovery fixes.
    pub fn from_env() -> Option<WorkerRequest> {
        let assignment = proto::Assignment::from_env()?;
        Some(WorkerRequest { spec: assignment.spec, out: assignment.out })
    }

    /// Where the parent expects this worker's snapshot.
    pub fn out_path(&self) -> &Path {
        &self.out
    }

    /// Writes the finished shard's snapshot where the parent expects it
    /// (atomically, via [`persist::save_snapshot`]; any failure names
    /// the output path).
    pub fn fulfil(&self, snapshot: &CampaignSnapshot) -> Result<(), persist::PersistError> {
        persist::save_snapshot(&self.out, snapshot)
    }
}

/// A campaign split into N parallel shard sub-campaigns.
pub struct ShardedCampaign<R> {
    runner: R,
    shards: usize,
    base_seed: u64,
}

impl<R: ShardRunner> ShardedCampaign<R> {
    /// Creates a sharded campaign.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(runner: R, shards: usize, base_seed: u64) -> ShardedCampaign<R> {
        assert!(shards > 0, "a campaign needs at least one shard");
        ShardedCampaign { runner, shards, base_seed }
    }

    /// The shard assignments this campaign will run.
    pub fn specs(&self) -> Vec<ShardSpec> {
        (0..self.shards)
            .map(|index| ShardSpec {
                index,
                shards: self.shards,
                seed: shard_seed(self.base_seed, index),
            })
            .collect()
    }

    /// Runs every shard in parallel and collects the outcome. The first
    /// failing shard (by index) decides the error.
    pub fn run(&self) -> Result<ShardedOutcome, ShardError> {
        let specs = self.specs();
        let results: Vec<Result<CampaignSnapshot, ShardError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .iter()
                .map(|&spec| scope.spawn(move || self.runner.run_shard(spec)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect()
        });
        let mut snapshots = Vec::with_capacity(results.len());
        for result in results {
            snapshots.push(result?);
        }
        ShardedOutcome::new(snapshots)
    }
}

/// The collected shard snapshots of one sharded run, plus the merge ops.
pub struct ShardedOutcome {
    snapshots: Vec<CampaignSnapshot>,
}

impl ShardedOutcome {
    /// Validates and wraps per-shard snapshots (shard order). Exposed so
    /// snapshots gathered out of band — e.g. loaded from a directory of
    /// worker outputs — merge through the same path.
    pub fn new(snapshots: Vec<CampaignSnapshot>) -> Result<ShardedOutcome, ShardError> {
        let Some(first) = snapshots.first() else {
            return Err(ShardError::Merge("no shard snapshots".to_string()));
        };
        let fingerprint = first.coverage().space().fingerprint();
        let names: Vec<&str> = first.gen_stats.iter().map(|s| s.name.as_str()).collect();
        for (i, s) in snapshots.iter().enumerate().skip(1) {
            if s.dut != first.dut {
                return Err(ShardError::Merge(format!(
                    "shard {i} ran DUT `{}`, shard 0 ran `{}`",
                    s.dut, first.dut
                )));
            }
            if s.coverage().space().fingerprint() != fingerprint {
                return Err(ShardError::Merge(format!(
                    "shard {i} covers a different coverage space than shard 0"
                )));
            }
            let theirs: Vec<&str> = s.gen_stats.iter().map(|g| g.name.as_str()).collect();
            if theirs != names {
                return Err(ShardError::Merge(format!(
                    "shard {i} generator line-up {theirs:?} differs from shard 0's {names:?}"
                )));
            }
            // Identical line-ups must agree on which arms carry which
            // state halves (corpus/model), or the merge below has
            // nothing sound to fold.
            let state_shape = |snap: &CampaignSnapshot| -> Vec<(bool, bool, bool)> {
                snap.gen_states
                    .iter()
                    .map(|g| match g {
                        None => (false, false, false),
                        Some(s) => (true, s.corpus.is_some(), s.model.is_some()),
                    })
                    .collect()
            };
            if state_shape(s) != state_shape(first) {
                return Err(ShardError::Merge(format!(
                    "shard {i} carries generator state of a different shape \
                     than shard 0"
                )));
            }
        }
        Ok(ShardedOutcome { snapshots })
    }

    /// The per-shard snapshots, in shard order.
    pub fn shard_snapshots(&self) -> &[CampaignSnapshot] {
        &self.snapshots
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.snapshots.len()
    }

    /// The union of all shard coverage maps.
    pub fn merged_coverage(&self) -> CovMap {
        CovMap::union(self.snapshots.iter().map(|s| s.coverage()))
            .expect("outcome always has at least one shard")
    }

    /// Folds the shards into one resume-compatible snapshot (see the
    /// module docs for the exact merge semantics). Hand it to
    /// [`crate::CampaignBuilder::resume`] — with shard 0's generator
    /// line-up and scheduler — to continue the merged campaign as a
    /// single process, or persist it with [`crate::persist`].
    pub fn merged_snapshot(&self) -> CampaignSnapshot {
        fold_snapshots(&self.snapshots, None)
    }

    /// Like [`ShardedOutcome::merged_snapshot`], but for shards that all
    /// *continued from* `base` (a previously merged snapshot, typically
    /// re-split with [`resplit_snapshot`]): every additive quantity —
    /// tests, batches, cycles, generator statistics, mismatch counts —
    /// subtracts the base once per later shard, so the shared prefix is
    /// counted exactly once. Coverage and corpus unions are idempotent
    /// and need no correction. This is the merge-then-continue seam the
    /// orchestrator folds each generation through.
    ///
    /// # Panics
    ///
    /// Panics (by counter underflow) if a shard does not actually
    /// descend from `base` — its counters would be below the base's.
    pub fn merged_snapshot_over_base(&self, base: &CampaignSnapshot) -> CampaignSnapshot {
        fold_snapshots(&self.snapshots, Some(base))
    }

    /// The merged snapshot rendered as a [`CampaignReport`].
    pub fn merged_report(&self) -> CampaignReport {
        self.merged_snapshot().report()
    }

    /// Merged cumulative coverage percentage.
    pub fn merged_coverage_pct(&self) -> f64 {
        self.merged_coverage().percent()
    }

    /// Wall clock of the merged run (the slowest shard, since shards run
    /// in parallel).
    pub fn wall(&self) -> Duration {
        self.snapshots.iter().map(|s| s.wall).max().unwrap_or(Duration::ZERO)
    }
}

/// The one merge fold behind [`ShardedOutcome::merged_snapshot`] (no
/// base) and [`ShardedOutcome::merged_snapshot_over_base`] (every shard
/// continued from `base`, which must be subtracted from each later
/// shard's additive counters exactly once — shard 0's copy of the base
/// is the one that stays).
fn fold_snapshots(
    snapshots: &[CampaignSnapshot],
    base: Option<&CampaignSnapshot>,
) -> CampaignSnapshot {
    let first = &snapshots[0];
    let mut merged = first.clone();
    let mut running = first.calculator.total().clone();
    let base_tests = base.map_or(0, |b| b.tests_run);
    for s in &snapshots[1..] {
        match base {
            None => merged.log.merge_from(&s.log),
            Some(b) => merged.log.merge_delta_from(&s.log, &b.log),
        }
        for (slot, (mine, theirs)) in merged.gen_stats.iter_mut().zip(&s.gen_stats).enumerate() {
            let b = base.map(|b| &b.gen_stats[slot]);
            mine.batches += theirs.batches - b.map_or(0, |b| b.batches);
            mine.tests += theirs.tests - b.map_or(0, |b| b.tests);
            mine.new_bins += theirs.new_bins - b.map_or(0, |b| b.new_bins);
            mine.cycles += theirs.cycles - b.map_or(0, |b| b.cycles);
        }
        // Generator state merges half by half. Evolutionary corpora
        // union fingerprint-deduped: shard 0's seeds keep their
        // statistics, every later shard contributes only seeds with
        // unseen coverage fingerprints, re-stamped with fresh
        // discovery counters so ordering stays unique (base seeds are
        // already in shard 0's copy, so the dedupe makes the base
        // contribution idempotent). Seeds a later shard newly
        // contributes are also collected so the model half below can
        // replay them. Shard 0's RNG streams carry over, mirroring how
        // the merged snapshot keeps shard 0's scheduler stream.
        let mut contributed: Vec<CorpusSeedState> = Vec::new();
        for (mine, theirs) in merged.gen_states.iter_mut().zip(&s.gen_states) {
            let (Some(mine), Some(theirs)) = (mine.as_mut(), theirs.as_ref()) else {
                continue;
            };
            let (Some(mine), Some(theirs)) = (mine.corpus.as_mut(), theirs.corpus.as_ref()) else {
                continue;
            };
            for seed in &theirs.seeds {
                if mine.seeds.iter().any(|k| k.fingerprint == seed.fingerprint) {
                    continue;
                }
                contributed.push(seed.clone());
                let mut seed = seed.clone();
                seed.found_at = mine.next_found_at;
                mine.next_found_at += 1;
                mine.seeds.push(seed);
            }
        }
        // Model state: the *weights* (and optimiser moments) stay shard
        // 0's — averaging independently trained weights would
        // manufacture a policy no shard ever ran — but everything the
        // other shards learned is pooled through the learner. Prompt
        // pools union, pending actor/learner rollout queues union
        // fingerprint-deduped, and every corpus seed a later shard
        // contributed above is re-encoded as a reward-weighted replay
        // rollout so the next publish boundary trains the merged weights
        // on the merged corpus. Epoch and cadence counters take the
        // cross-shard maximum so published weight versions stay
        // monotone across the fleet.
        for (mine, theirs) in merged.gen_states.iter_mut().zip(&s.gen_states) {
            let (Some(mine), Some(theirs)) = (mine.as_mut(), theirs.as_ref()) else {
                continue;
            };
            let (Some(model), Some(their_model)) = (mine.model.as_mut(), theirs.model.as_ref())
            else {
                continue;
            };
            for program in &their_model.prompt_pool {
                if !model.prompt_pool.contains(program) {
                    model.prompt_pool.push(program.clone());
                }
            }
            let mut seen: Vec<u64> = model.learner_queue.iter().map(rollout_fingerprint).collect();
            let mut push_unique = |queue: &mut Vec<PendingRollout>, rollout: PendingRollout| {
                let fp = rollout_fingerprint(&rollout);
                if !seen.contains(&fp) {
                    seen.push(fp);
                    queue.push(rollout);
                }
            };
            for rollout in &their_model.learner_queue {
                push_unique(&mut model.learner_queue, rollout.clone());
            }
            if !contributed.is_empty() {
                let kind = if model.bpe { TokenizerKind::Bpe } else { TokenizerKind::FixedByte };
                let tokenizer = Tokenizer::from_parts(kind, model.merges.clone());
                for seed in &contributed {
                    // Full `BOS .. EOS` encoding with `prompt_len` 1:
                    // the whole program counts as "generated", so the
                    // replay credits the policy for the entire seed.
                    // Seeds whose encoding exceeds the model's context
                    // window are skipped by the learner's replay
                    // selection, not here (the window is a construction
                    // parameter the merge does not know).
                    let rollout = PendingRollout {
                        tokens: tokenizer.encode(&seed.words),
                        prompt_len: 1,
                        reward: replay_reward(seed),
                    };
                    push_unique(&mut model.learner_queue, rollout);
                }
            }
            model.publish_epoch = model.publish_epoch.max(their_model.publish_epoch);
            model.batches_since_publish =
                model.batches_since_publish.max(their_model.batches_since_publish);
        }
        merged.tests_run += s.tests_run - base_tests;
        merged.batches_run += s.batches_run - base.map_or(0, |b| b.batches_run);
        merged.total_cycles += s.total_cycles - base.map_or(0, |b| b.total_cycles);
        merged.batches_since_gain = merged.batches_since_gain.min(s.batches_since_gain);
        merged.wall = merged.wall.max(s.wall);
        // A per-shard stop condition (e.g. Tests(256)) is not true of
        // the merged run, which executed it N-fold — clear it rather
        // than report a budget the campaign ran past.
        merged.stopped_by = None;
        // One history boundary point per folded shard: the union
        // coverage after this shard's contribution.
        running.merge_from(s.calculator.total());
        if s.tests_run > base_tests {
            merged.history.push(CoveragePoint {
                tests: merged.tests_run,
                covered_bins: running.covered_bins(),
                coverage_pct: running.percent(),
                sim_cycles: merged.total_cycles,
                wall: merged.wall,
            });
        }
    }
    let previous = CovMap::union(snapshots.iter().map(|s| s.calculator.previous_batch_total()))
        .expect("outcome always has at least one shard");
    merged.calculator = Calculator::from_parts(running, previous);
    merged
}

/// FNV-1a content fingerprint of a pending rollout (tokens, prompt
/// boundary, reward bit pattern) — the dedupe key the shard merge uses
/// so a rollout absorbed by several shards replays once, not N times.
fn rollout_fingerprint(rollout: &PendingRollout) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let eat = |h: u64, byte: u8| (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    for &t in &rollout.tokens {
        for b in t.to_le_bytes() {
            h = eat(h, b);
        }
    }
    for b in (rollout.prompt_len as u64).to_le_bytes() {
        h = eat(h, b);
    }
    for b in rollout.reward.to_bits().to_le_bytes() {
        h = eat(h, b);
    }
    h
}

/// Deterministic replay reward for a corpus seed another shard
/// contributed, shaped like the default [`CoverageReward`] incremental
/// term (`0.5 * (1 + ln new_bins)`) plus a small mux-coverage term and a
/// flat mismatch bonus — the discovery stats stand in for the coverage
/// feedback the original run saw.
///
/// [`CoverageReward`]: crate::generator::CoverageReward
fn replay_reward(seed: &CorpusSeedState) -> f32 {
    let mut reward =
        if seed.new_bins > 0 { 0.5 * (1.0 + (seed.new_bins as f32).ln()) } else { 0.0 };
    reward += 0.1 * (seed.mux_bins as f32).ln_1p();
    if seed.mismatch {
        reward += 1.0;
    }
    reward
}

/// Derives one lease's continuation snapshot from a merged snapshot:
/// identical pooled coverage, corpus, history, and counters, but with
/// the scheduler's and every stateful generator's RNG stream reseeded
/// from `shard_seed(lease_seed, slot)` — N leases resumed from the same
/// merged snapshot would otherwise replay byte-identical input streams
/// and the fan-out would explore nothing new. Stateless generators
/// (no exported state) are diversified by the lease campaign factory
/// instead, which seeds them at construction time.
///
/// The cleared stop cause lets the lease run to its own stop condition
/// (see [`CampaignSnapshot::lease_stop`]).
pub fn resplit_snapshot(merged: &CampaignSnapshot, lease_seed: u64) -> CampaignSnapshot {
    use rand::SeedableRng;

    let mut lease = merged.clone();
    lease.stopped_by = None;
    if !lease.scheduler.rng_words.is_empty() {
        lease.scheduler.rng_words =
            rand_chacha::ChaCha8Rng::seed_from_u64(shard_seed(lease_seed, 0)).export_words();
    }
    for (slot, state) in lease.gen_states.iter_mut().enumerate() {
        let Some(state) = state.as_mut() else { continue };
        if !state.rng_words.is_empty() {
            state.rng_words =
                rand_chacha::ChaCha8Rng::seed_from_u64(shard_seed(lease_seed, slot + 1))
                    .export_words();
        }
    }
    lease
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignBuilder, DutFactory};
    use chatfuzz_baselines::RandomRegression;
    use chatfuzz_rtl::{BugConfig, Dut, Rocket, RocketConfig};

    fn factory() -> DutFactory {
        Arc::new(|| {
            Box::new(Rocket::new(RocketConfig { bugs: BugConfig::all_on(), ..Default::default() }))
                as Box<dyn Dut>
        })
    }

    fn runner(
        tests: usize,
    ) -> InProcessRunner<impl Fn(ShardSpec) -> (Campaign<'static>, Vec<StopCondition>) + Sync> {
        InProcessRunner::new(move |spec: ShardSpec| {
            let campaign = CampaignBuilder::from_factory(factory())
                .batch_size(16)
                .workers(2)
                .generator(RandomRegression::new(spec.seed, 16))
                .build();
            (campaign, vec![StopCondition::Tests(tests)])
        })
    }

    #[test]
    fn shard_seeds_are_disjoint_and_count_independent() {
        let seeds: Vec<u64> = (0..64).map(|i| shard_seed(7, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "collision in shard seeds");
        // Independent of total shard count by construction: the function
        // does not take one. Different base seeds give different streams.
        assert_ne!(shard_seed(7, 0), shard_seed(8, 0));
    }

    #[test]
    fn sharded_run_merges_counters_and_coverage() {
        let sharded = ShardedCampaign::new(runner(32), 3, 11);
        let outcome = sharded.run().expect("shards succeed");
        assert_eq!(outcome.shards(), 3);
        let merged = outcome.merged_snapshot();
        assert_eq!(merged.tests_run(), 96, "3 shards × 32 tests");
        // Union ≥ any single shard.
        let union = outcome.merged_coverage();
        for s in outcome.shard_snapshots() {
            assert!(s.coverage().is_subset_of(&union));
            assert!(s.coverage().covered_bins() <= union.covered_bins());
        }
        assert_eq!(merged.coverage().covered_bins(), union.covered_bins());
        // History stays strictly increasing in tests and monotone in bins.
        let report = outcome.merged_report();
        for pair in report.history.windows(2) {
            assert!(pair[1].tests > pair[0].tests);
            assert!(pair[1].covered_bins >= pair[0].covered_bins);
        }
    }

    #[test]
    fn merged_snapshot_is_resumable() {
        let sharded = ShardedCampaign::new(runner(32), 2, 5);
        let outcome = sharded.run().expect("shards succeed");
        let merged = outcome.merged_snapshot();
        let tests_so_far = merged.tests_run();
        let mut resumed = CampaignBuilder::from_factory(factory())
            .batch_size(16)
            .workers(2)
            .generator(RandomRegression::new(99, 16))
            .resume(merged)
            .build();
        let report = resumed.run_until(&[StopCondition::Tests(tests_so_far + 32)]);
        assert_eq!(report.tests_run, tests_so_far + 32);
        assert!(report.final_coverage_pct >= outcome.merged_coverage_pct());
    }

    #[test]
    fn proto_assignment_round_trips_through_any_carrier() {
        let spec = ShardSpec { index: 3, shards: 8, seed: 0xDEAD_BEEF };
        let assignment = proto::Assignment::new(spec, "/tmp/shard-3.json");
        let pairs: std::collections::HashMap<&str, String> =
            assignment.pairs().into_iter().collect();
        let decoded = proto::Assignment::from_lookup(|key| pairs.get(key).cloned())
            .expect("assignment present");
        assert_eq!(decoded, assignment);
        // An empty carrier holds no assignment (the common non-worker case).
        assert!(proto::Assignment::from_lookup(|_| None).is_none());
    }

    #[test]
    fn base_delta_merge_counts_the_shared_prefix_once() {
        let base =
            ShardedCampaign::new(runner(32), 2, 7).run().expect("base shards").merged_snapshot();

        // Two leases continue from the same merged base.
        let mut leases = Vec::new();
        for i in 0..2u64 {
            let mut lease = CampaignBuilder::from_factory(factory())
                .batch_size(16)
                .workers(2)
                .generator(RandomRegression::new(1000 + i, 16))
                .resume(resplit_snapshot(&base, shard_seed(41, i as usize)))
                .build();
            lease.run_until(&[base.lease_stop(32)]);
            leases.push(lease.snapshot());
        }
        let raw_deltas: usize =
            leases.iter().map(|l| l.log.raw_count() - base.log.raw_count()).sum();

        let outcome = ShardedOutcome::new(leases).expect("leases merge");
        let merged = outcome.merged_snapshot_over_base(&base);
        assert_eq!(
            merged.tests_run(),
            base.tests_run() + 64,
            "base tests counted once, lease deltas summed"
        );
        assert_eq!(merged.log.raw_count(), base.log.raw_count() + raw_deltas);
        let stats_tests: usize = merged.gen_stats.iter().map(|s| s.tests).sum();
        assert_eq!(stats_tests, merged.tests_run(), "per-arm stats agree with the total");
        // Coverage union contains the base (idempotent, no correction needed).
        assert!(base.coverage().is_subset_of(merged.coverage()));
    }

    #[test]
    fn resplit_reseeds_streams_and_keeps_the_pool() {
        let mut campaign = CampaignBuilder::from_factory(factory())
            .batch_size(16)
            .workers(2)
            .generator(RandomRegression::new(3, 16))
            .generator(RandomRegression::new(4, 16))
            .scheduler(chatfuzz_baselines::EpsilonGreedy::new(5, 0.2))
            .build();
        campaign.run_until(&[StopCondition::Tests(32)]);
        let mut snap = campaign.snapshot();
        // Give slot 0 a synthetic stateful half so the generator-side
        // reseeding is exercised too (stateless arms export nothing).
        use rand::SeedableRng;
        snap.gen_states[0] = Some(chatfuzz_baselines::GeneratorState {
            generator: "random".to_string(),
            rng_words: rand_chacha::ChaCha8Rng::seed_from_u64(9).export_words(),
            corpus: None,
            model: None,
        });

        let a = resplit_snapshot(&snap, 1);
        let b = resplit_snapshot(&snap, 2);
        assert_eq!(a.tests_run(), snap.tests_run(), "counters carry over");
        assert_eq!(a.coverage().covered_bins(), snap.coverage().covered_bins());
        assert_ne!(a.scheduler.rng_words, snap.scheduler.rng_words, "scheduler reseeded");
        assert_ne!(a.scheduler.rng_words, b.scheduler.rng_words, "leases diverge");
        let (wa, wb) = (a.gen_states[0].as_ref().unwrap(), b.gen_states[0].as_ref().unwrap());
        assert_ne!(wa.rng_words, wb.rng_words, "generator streams diverge per lease");
        assert!(a.gen_states[1].is_none(), "stateless arm stays stateless");
        assert!(a.stopped_by.is_none(), "stop cause cleared for the next lease");
    }

    #[test]
    fn merge_rejects_mixed_lineups() {
        let a = {
            let mut c = CampaignBuilder::from_factory(factory())
                .batch_size(8)
                .workers(2)
                .generator(RandomRegression::new(1, 16))
                .build();
            c.step_batch();
            c.snapshot()
        };
        let b = {
            let mut c = CampaignBuilder::from_factory(factory())
                .batch_size(8)
                .workers(2)
                .generator(chatfuzz_baselines::TheHuzz::new(
                    chatfuzz_baselines::MutatorConfig::default(),
                ))
                .build();
            c.step_batch();
            c.snapshot()
        };
        match ShardedOutcome::new(vec![a, b]) {
            Err(ShardError::Merge(msg)) => assert!(msg.contains("line-up"), "{msg}"),
            other => panic!("expected merge error, got {:?}", other.err()),
        }
    }
}
