//! The bare-metal test harness wrapped around every fuzzing input.
//!
//! Processor fuzzers do not run raw instruction soup at the reset vector:
//! they wrap each test in a fixed prologue that installs a trap handler
//! (so a single faulting instruction does not end the run) and sets up a
//! stack, exactly as TheHuzz and DifuzzRTL do. The handler advances `mepc`
//! past the faulting instruction and `mret`s; runs end at `wfi`, a
//! `tohost` store, the instruction budget, or a trap storm.

use chatfuzz_isa::asm::Assembler;
use chatfuzz_isa::{AluOp, Csr, CsrOp, CsrSrc, Instr, Reg, SystemOp};
use chatfuzz_softcore::mem::{DEFAULT_RAM_BASE, DEFAULT_RAM_SIZE};

/// Harness layout parameters.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// RAM base (= reset PC).
    pub ram_base: u64,
    /// RAM size (the stack pointer is parked near the top).
    pub ram_size: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig { ram_base: DEFAULT_RAM_BASE, ram_size: DEFAULT_RAM_SIZE }
    }
}

/// A harness whose prologue/epilogue bytes are assembled **once** per
/// [`HarnessConfig`], then reused for every test image — the assembler no
/// longer runs on the per-test hot path.
///
/// # Examples
///
/// ```
/// use chatfuzz::harness::{wrap, HarnessConfig, PrecompiledHarness};
///
/// let cfg = HarnessConfig::default();
/// let harness = PrecompiledHarness::new(cfg);
/// let body = 0x0000_0013u32.to_le_bytes(); // nop
/// // Identical to the one-shot `wrap`, without re-assembling.
/// assert_eq!(harness.wrap(&body), wrap(&body, cfg));
/// // Zero-allocation reuse of an image buffer:
/// let mut image = Vec::new();
/// harness.build_into(&body, &mut image);
/// assert_eq!(image, wrap(&body, cfg));
/// ```
#[derive(Debug, Clone)]
pub struct PrecompiledHarness {
    cfg: HarnessConfig,
    prologue: Vec<u8>,
    epilogue: [u8; chatfuzz_isa::INSTR_BYTES],
}

impl PrecompiledHarness {
    /// Assembles the prologue + trap handler for `cfg` (the only time the
    /// assembler runs for this harness).
    pub fn new(cfg: HarnessConfig) -> PrecompiledHarness {
        let t0 = Reg::new(5).unwrap();
        let t1 = Reg::new(6).unwrap();
        let mut asm = Assembler::new();
        // t0 = pc of this auipc = ram_base.
        asm.push(Instr::Auipc { rd: t0, imm: 0 });
        // t1 = &handler (fixed offset computed after assembly; use labels).
        asm.jal_to(t1, "install"); // placeholder control flow: see below
                                   // handler:
        asm.label("handler");
        asm.push(Instr::Csr {
            op: CsrOp::Rs,
            rd: t1,
            csr: Csr::MEPC.addr(),
            src: CsrSrc::Reg(Reg::X0),
        });
        asm.push(Instr::OpImm { op: AluOp::Add, rd: t1, rs1: t1, imm: 4, word: false });
        asm.push(Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::X0,
            csr: Csr::MEPC.addr(),
            src: CsrSrc::Reg(t1),
        });
        asm.push(Instr::System(SystemOp::Mret));
        // install: (t1 = address of the instruction after the jal = handler)
        asm.label("install");
        asm.push(Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::X0,
            csr: Csr::MTVEC.addr(),
            src: CsrSrc::Reg(t1),
        });
        // sp = ram_base + ram_size - 64.
        let sp_target = (cfg.ram_base + cfg.ram_size - 64) as i64;
        asm.li(Reg::SP, sp_target);
        asm.jal_to(Reg::X0, "body");
        asm.label("body");
        let prologue = asm.assemble_bytes().expect("harness assembles");
        let epilogue = chatfuzz_isa::encode(&Instr::System(SystemOp::Wfi)).unwrap().to_le_bytes();
        PrecompiledHarness { cfg, prologue, epilogue }
    }

    /// The layout this harness was compiled for.
    pub fn config(&self) -> HarnessConfig {
        self.cfg
    }

    /// Byte offset of the body within a built image (prologue size).
    pub fn body_offset(&self) -> usize {
        self.prologue.len()
    }

    /// Builds `prologue + body + wfi` into a caller-owned buffer
    /// (cleared first, capacity kept) — the zero-allocation hot path.
    pub fn build_into(&self, body: &[u8], out: &mut Vec<u8>) {
        out.clear();
        out.reserve(self.prologue.len() + body.len() + self.epilogue.len());
        out.extend_from_slice(&self.prologue);
        out.extend_from_slice(body);
        out.extend_from_slice(&self.epilogue);
    }

    /// Builds an owned image (convenience wrapper over
    /// [`PrecompiledHarness::build_into`]).
    pub fn wrap(&self, body: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.build_into(body, &mut out);
        out
    }
}

/// Builds the full test image: prologue + handler + body + `wfi` epilogue.
///
/// The prologue:
/// 1. computes the handler address PC-relatively,
/// 2. installs it in `mtvec`,
/// 3. points `sp` at the top of RAM,
/// 4. jumps over the handler into the body.
///
/// One-shot convenience around [`PrecompiledHarness`]; batch callers
/// should precompile once and reuse.
///
/// # Examples
///
/// ```
/// use chatfuzz::harness::{wrap, HarnessConfig};
/// use chatfuzz_softcore::{trace::ExitReason, SoftCore, SoftCoreConfig};
///
/// // A body that immediately faults (defined-illegal word) still runs to
/// // the wfi epilogue thanks to the skip-and-return handler.
/// let image = wrap(&0u32.to_le_bytes(), HarnessConfig::default());
/// let trace = SoftCore::new(SoftCoreConfig::default()).run(&image);
/// assert_eq!(trace.exit, ExitReason::Wfi);
/// assert_eq!(trace.trap_count(), 1);
/// ```
pub fn wrap(body: &[u8], cfg: HarnessConfig) -> Vec<u8> {
    PrecompiledHarness::new(cfg).wrap(body)
}

/// Byte offset of the body within a wrapped image (prologue size).
///
/// Computed from the precompiled prologue directly — this no longer
/// assembles (and throws away) a whole empty image per call.
pub fn body_offset(cfg: HarnessConfig) -> usize {
    PrecompiledHarness::new(cfg).body_offset()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_isa::encode_program;
    use chatfuzz_softcore::{trace::ExitReason, SoftCore, SoftCoreConfig};

    fn run(body: &[u8]) -> chatfuzz_softcore::Trace {
        let image = wrap(body, HarnessConfig::default());
        SoftCore::new(SoftCoreConfig::default()).run(&image)
    }

    #[test]
    fn empty_body_reaches_wfi() {
        let trace = run(&[]);
        assert_eq!(trace.exit, ExitReason::Wfi);
        assert_eq!(trace.trap_count(), 0);
    }

    #[test]
    fn faulting_body_instructions_are_skipped() {
        // Three illegal words in a row: three handled traps, then wfi.
        let mut body = Vec::new();
        for _ in 0..3 {
            body.extend_from_slice(&0u32.to_le_bytes());
        }
        let trace = run(&body);
        assert_eq!(trace.exit, ExitReason::Wfi);
        assert_eq!(trace.trap_count(), 3);
    }

    #[test]
    fn ecall_round_trips_through_handler() {
        let body = encode_program(&[Instr::System(SystemOp::Ecall), Instr::NOP]).unwrap();
        let trace = run(&body);
        assert_eq!(trace.exit, ExitReason::Wfi);
        assert_eq!(trace.trap_count(), 1);
    }

    #[test]
    fn stack_is_usable() {
        use chatfuzz_isa::MemWidth;
        // Push/pop through sp set up by the prologue.
        let body = encode_program(&[
            Instr::OpImm { op: AluOp::Add, rd: Reg::SP, rs1: Reg::SP, imm: -16, word: false },
            Instr::Store { width: MemWidth::D, rs2: Reg::SP, rs1: Reg::SP, offset: 8 },
            Instr::Load {
                width: MemWidth::D,
                signed: true,
                rd: Reg::new(10).unwrap(),
                rs1: Reg::SP,
                offset: 8,
            },
        ])
        .unwrap();
        let trace = run(&body);
        assert_eq!(trace.exit, ExitReason::Wfi);
        assert_eq!(trace.trap_count(), 0, "stack accesses must not fault");
    }

    #[test]
    fn body_offset_is_stable() {
        let off = body_offset(HarnessConfig::default());
        assert!(off > 0 && off.is_multiple_of(4));
        let image = wrap(&0x0000_0013u32.to_le_bytes(), HarnessConfig::default());
        assert_eq!(
            &image[off..off + 4],
            &0x0000_0013u32.to_le_bytes(),
            "body lands at the reported offset"
        );
    }

    #[test]
    fn wild_jump_in_body_is_contained() {
        // jalr to a wild address: fetch faults, handler skips (mepc+4 of a
        // wild pc is still wild -> repeated faults -> trap storm), bounded.
        let body =
            encode_program(&[Instr::Jalr { rd: Reg::X0, rs1: Reg::X0, offset: 0x40 }]).unwrap();
        let trace = run(&body);
        assert!(matches!(trace.exit, ExitReason::TrapStorm | ExitReason::Wfi));
    }
}
