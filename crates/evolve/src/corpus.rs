//! The retained-seed store: fingerprint dedupe, favored/energy scoring,
//! deterministic weighted scheduling, and bounded eviction.
//!
//! # Scoring (AFL's favored/energy model, integerised)
//!
//! Every seed carries the statistics it was retained under: the coverage
//! bins it *first* reached (`new_bins`), its standalone mux-select
//! coverage, and whether it triggered a golden/DUT mismatch. From those,
//!
//! * a seed is **favored** when it triggered a mismatch or its discovery
//!   gain is within 4× of the best discovery in the corpus — the cheap
//!   stand-in for AFL's minimal covering set that needs no per-seed
//!   bitmaps in the snapshot;
//! * its **energy** is `(1 + 4·new_bins + mux_bins + 32·mismatch)`,
//!   tripled when favored, divided by `1 + picks/8` so repeatedly
//!   scheduled parents decay in favour of fresh discoveries.
//!
//! Parent selection draws proportionally to energy from the corpus's own
//! ChaCha stream, so scheduling is bit-reproducible and survives
//! snapshot/resume (the stream rides in the generator's
//! `GeneratorState::rng_words`). Eviction
//! (over [`Corpus::max_seeds`]) removes the lowest-energy,
//! youngest-on-tie seed; every quantity involved is an integer, so the
//! whole store round-trips exactly through the persisted form.

use std::collections::HashMap;

use chatfuzz_baselines::{CorpusSeedState, CorpusState};
use chatfuzz_coverage::CovMap;
use chatfuzz_isa::{decode, Instr};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// One retained seed: the serialisable state plus its decoded form (the
/// mutation engine's working representation, rebuilt from the words on
/// import).
#[derive(Debug, Clone)]
pub struct Seed {
    /// Serialisable statistics + encoded words.
    pub state: CorpusSeedState,
    /// Decoded instructions (always in sync with `state.words`).
    pub instrs: Vec<Instr>,
}

/// The coverage-guided seed store.
#[derive(Debug)]
pub struct Corpus {
    seeds: Vec<Seed>,
    by_fingerprint: HashMap<u64, usize>,
    next_found_at: u64,
    max_seeds: usize,
    max_new_bins: u64,
    /// Bumped on every content change (insert/eviction/import) — the
    /// cheap change signal behind `InputGenerator::seeds_revision`.
    revision: u64,
}

impl Corpus {
    /// Creates an empty corpus retaining at most `max_seeds` seeds.
    ///
    /// # Panics
    ///
    /// Panics if `max_seeds == 0`.
    pub fn new(max_seeds: usize) -> Corpus {
        assert!(max_seeds > 0, "a corpus needs room for at least one seed");
        Corpus {
            seeds: Vec::new(),
            by_fingerprint: HashMap::new(),
            next_found_at: 0,
            max_seeds,
            max_new_bins: 0,
            revision: 0,
        }
    }

    /// A counter that changes whenever the retained seed set changes.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Number of retained seeds.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether the corpus holds no seeds yet.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// The retained seeds, in insertion order.
    pub fn seeds(&self) -> &[Seed] {
        &self.seeds
    }

    /// Whether a seed with this coverage fingerprint is already retained.
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.by_fingerprint.contains_key(&fingerprint)
    }

    /// Inserts a seed unless its fingerprint is already present. Returns
    /// whether it was added. Evicts the lowest-energy seed when full.
    pub fn insert(
        &mut self,
        instrs: Vec<Instr>,
        words: Vec<u32>,
        fingerprint: u64,
        new_bins: u64,
        mux_bins: u64,
        mismatch: bool,
    ) -> bool {
        if instrs.is_empty() || self.contains(fingerprint) {
            return false;
        }
        let state = CorpusSeedState {
            words,
            fingerprint,
            new_bins,
            mux_bins,
            mismatch,
            picks: 0,
            found_at: self.next_found_at,
        };
        self.next_found_at += 1;
        self.max_new_bins = self.max_new_bins.max(new_bins);
        self.by_fingerprint.insert(fingerprint, self.seeds.len());
        self.seeds.push(Seed { state, instrs });
        // `while`, not `if`: an imported shard-merged corpus may exceed
        // the capacity, and the first insert afterwards re-establishes
        // the bound.
        while self.seeds.len() > self.max_seeds {
            self.evict_one();
        }
        self.revision += 1;
        true
    }

    /// Whether the seed sits on the discovery frontier (see module docs).
    fn favored(&self, s: &CorpusSeedState) -> bool {
        s.mismatch || (s.new_bins > 0 && s.new_bins * 4 >= self.max_new_bins)
    }

    /// The seed's integer scheduling energy (always ≥ 1).
    pub fn energy(&self, s: &CorpusSeedState) -> u64 {
        let base = 1 + 4 * s.new_bins + s.mux_bins + if s.mismatch { 32 } else { 0 };
        let boosted = if self.favored(s) { base * 3 } else { base };
        (boosted / (1 + s.picks.min(512) / 8)).max(1)
    }

    /// Removes the lowest-energy seed, breaking ties toward the youngest
    /// (largest `found_at`), and reindexes the fingerprint map.
    fn evict_one(&mut self) {
        let victim = self
            .seeds
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| (self.energy(&s.state), u64::MAX - s.state.found_at))
            .map(|(i, _)| i)
            .expect("evict_one is only called on a non-empty corpus");
        let removed = self.seeds.remove(victim);
        self.by_fingerprint.remove(&removed.state.fingerprint);
        for (i, seed) in self.seeds.iter().enumerate() {
            self.by_fingerprint.insert(seed.state.fingerprint, i);
        }
    }

    /// Energy-weighted parent selection; bumps the winner's pick count.
    /// Deterministic given the RNG state.
    ///
    /// # Panics
    ///
    /// Panics if the corpus is empty.
    pub fn pick_weighted(&mut self, rng: &mut ChaCha8Rng) -> usize {
        assert!(!self.seeds.is_empty(), "cannot pick from an empty corpus");
        let total: u64 = self.seeds.iter().map(|s| self.energy(&s.state)).sum();
        let mut draw = rng.gen_range(0..total);
        let mut winner = self.seeds.len() - 1;
        for (i, seed) in self.seeds.iter().enumerate() {
            let e = self.energy(&seed.state);
            if draw < e {
                winner = i;
                break;
            }
            draw -= e;
        }
        self.seeds[winner].state.picks += 1;
        winner
    }

    /// The decoded instructions of seed `i`.
    pub fn instrs(&self, i: usize) -> &[Instr] {
        &self.seeds[i].instrs
    }

    /// AFL-cmin-style corpus distillation: keeps a greedy covering
    /// subset of the seeds and drops every seed whose *standalone*
    /// coverage is a subset of what the retained set already reaches.
    /// `standalone` carries each seed's standalone coverage map, aligned
    /// with [`Corpus::seeds`] (seeds don't store per-seed bitmaps in the
    /// snapshot, so the caller — e.g. an orchestrator at a merge point —
    /// re-executes them to produce the maps).
    ///
    /// Greedy order is mismatch witnesses first (always retained — they
    /// evidence bugs regardless of coverage), then widest standalone
    /// cover, oldest on ties. By construction the retained set's union
    /// equals the full set's union — distillation never loses coverage.
    /// Returns the number of seeds dropped.
    ///
    /// # Panics
    ///
    /// Panics if `standalone` is not exactly one map per retained seed.
    pub fn distill(&mut self, standalone: &[CovMap]) -> usize {
        assert_eq!(
            standalone.len(),
            self.seeds.len(),
            "distill needs one standalone coverage map per retained seed"
        );
        let Some(first) = standalone.first() else { return 0 };
        let mut order: Vec<usize> = (0..self.seeds.len()).collect();
        order.sort_by_key(|&i| {
            let s = &self.seeds[i].state;
            (!s.mismatch, std::cmp::Reverse(standalone[i].covered_bins()), s.found_at)
        });
        let mut running = CovMap::new(first.space());
        let mut keep = vec![false; self.seeds.len()];
        for &i in &order {
            if self.seeds[i].state.mismatch || standalone[i].count_new_vs(&running) > 0 {
                keep[i] = true;
                running.merge_from(&standalone[i]);
            }
        }
        let dropped = keep.iter().filter(|&&k| !k).count();
        if dropped == 0 {
            return 0;
        }
        let mut index = 0;
        self.seeds.retain(|_| {
            let kept = keep[index];
            index += 1;
            kept
        });
        self.by_fingerprint.clear();
        self.max_new_bins = 0;
        for (i, seed) in self.seeds.iter().enumerate() {
            self.by_fingerprint.insert(seed.state.fingerprint, i);
            self.max_new_bins = self.max_new_bins.max(seed.state.new_bins);
        }
        self.revision += 1;
        dropped
    }

    /// Exports the store (without the generator's RNG; the caller owns
    /// that) as the seed list + discovery counter of a [`CorpusState`].
    pub fn export_into(&self, state: &mut CorpusState) {
        state.next_found_at = self.next_found_at;
        state.seeds = self.seeds.iter().map(|s| s.state.clone()).collect();
    }

    /// Rebuilds the store from a [`CorpusState`] seed list, re-decoding
    /// every word. The capacity is *not* part of the state (it is a
    /// construction parameter, like scheduler epsilon).
    ///
    /// # Panics
    ///
    /// Panics if a stored word does not decode or a fingerprint repeats —
    /// both mean the snapshot is corrupt (the corpus only ever retains
    /// decodable, fingerprint-unique seeds).
    pub fn import(&mut self, state: &CorpusState) {
        self.seeds.clear();
        self.by_fingerprint.clear();
        self.next_found_at = state.next_found_at;
        self.max_new_bins = 0;
        self.revision += 1;
        for s in &state.seeds {
            let instrs: Vec<Instr> = s
                .words
                .iter()
                .map(|&w| decode(w).expect("corpus snapshot carries undecodable words"))
                .collect();
            assert!(
                self.by_fingerprint.insert(s.fingerprint, self.seeds.len()).is_none(),
                "corpus snapshot repeats fingerprint {:#018x}",
                s.fingerprint
            );
            self.max_new_bins = self.max_new_bins.max(s.new_bins);
            self.seeds.push(Seed { state: s.clone(), instrs });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_isa::{AluOp, Reg};
    use rand::SeedableRng;

    fn instr(imm: i64) -> Instr {
        Instr::OpImm { op: AluOp::Add, rd: Reg::RA, rs1: Reg::X0, imm, word: false }
    }

    fn add(c: &mut Corpus, fp: u64, new_bins: u64, mismatch: bool) -> bool {
        let i = instr(fp as i64 % 100);
        let w = chatfuzz_isa::encode(&i).unwrap();
        c.insert(vec![i], vec![w], fp, new_bins, 0, mismatch)
    }

    #[test]
    fn dedupes_by_fingerprint() {
        let mut c = Corpus::new(8);
        assert!(add(&mut c, 1, 5, false));
        assert!(!add(&mut c, 1, 9, false), "same fingerprint rejected");
        assert!(add(&mut c, 2, 1, false));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_drops_the_lowest_energy_seed() {
        let mut c = Corpus::new(2);
        add(&mut c, 1, 100, false);
        add(&mut c, 2, 90, false);
        add(&mut c, 3, 1, false); // weakest → evicted immediately
        assert_eq!(c.len(), 2);
        assert!(c.contains(1) && c.contains(2) && !c.contains(3));
        // A mismatch seed outranks a small coverage seed.
        let mut c = Corpus::new(2);
        add(&mut c, 1, 100, false);
        add(&mut c, 2, 1, true);
        add(&mut c, 3, 2, false);
        assert!(c.contains(1) && c.contains(2) && !c.contains(3), "mismatch seed survives");
    }

    #[test]
    fn favored_seeds_get_more_energy_and_picks_decay() {
        let mut c = Corpus::new(8);
        add(&mut c, 1, 100, false); // frontier → favored
        add(&mut c, 2, 10, false); // 10*4 < 100 → not favored
        let e_fav = c.energy(&c.seeds()[0].state);
        let e_not = c.energy(&c.seeds()[1].state);
        assert!(e_fav > e_not * 3, "favored boost applies ({e_fav} vs {e_not})");
        let mut picked = c.seeds()[0].state.clone();
        picked.picks = 64;
        assert!(c.energy(&picked) < e_fav, "picks decay energy");
    }

    #[test]
    fn weighted_pick_is_deterministic_and_tracks_energy() {
        let run = || {
            let mut c = Corpus::new(8);
            add(&mut c, 1, 200, false);
            add(&mut c, 2, 1, false);
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            (0..50).map(|_| c.pick_weighted(&mut rng)).collect::<Vec<_>>()
        };
        let picks = run();
        assert_eq!(picks, run(), "selection is bit-reproducible");
        let strong = picks.iter().filter(|&&i| i == 0).count();
        assert!(strong > 35, "energy-weighted selection favours the discoverer ({strong}/50)");
    }

    fn distill_space() -> (std::sync::Arc<chatfuzz_coverage::Space>, Vec<chatfuzz_coverage::CondId>)
    {
        let mut builder = chatfuzz_coverage::SpaceBuilder::new("distill-unit");
        let ids = builder.register_array("c", 6, chatfuzz_coverage::PointKind::Condition);
        (builder.build(), ids)
    }

    #[test]
    fn distill_drops_subsumed_seeds_and_never_union_coverage() {
        let (space, ids) = distill_space();
        let map_of = |bins: &[usize]| {
            let mut m = CovMap::new(&space);
            for &b in bins {
                m.hit(ids[b], true);
            }
            m
        };
        let mut c = Corpus::new(8);
        add(&mut c, 1, 10, false); // widest cover → kept
        add(&mut c, 2, 2, false); // subset of seed 1 → dropped
        add(&mut c, 3, 1, false); // unique bin → kept
        add(&mut c, 4, 0, true); // mismatch witness, subset → kept anyway
        let maps = vec![map_of(&[0, 1, 2]), map_of(&[0, 1]), map_of(&[3]), map_of(&[0])];
        let union_before = CovMap::union(maps.iter()).expect("non-empty");
        let revision_before = c.revision();

        let dropped = c.distill(&maps);
        assert_eq!(dropped, 1);
        assert!(c.contains(1) && c.contains(3) && c.contains(4));
        assert!(!c.contains(2), "subsumed seed dropped");
        assert!(c.revision() > revision_before, "distillation is a content change");

        // The retained seeds' union is the full union — nothing lost.
        let union_after = CovMap::union([&maps[0], &maps[2], &maps[3]]).expect("non-empty");
        assert!(union_before.is_subset_of(&union_after));
        assert!(union_after.is_subset_of(&union_before));

        // The store still works: picks hit only retained seeds, and the
        // fingerprint index was rebuilt consistently.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..10 {
            let i = c.pick_weighted(&mut rng);
            assert!(i < c.len());
        }
        // A second distillation with the surviving maps is a fixpoint.
        let survivors = vec![maps[0].clone(), maps[2].clone(), maps[3].clone()];
        assert_eq!(c.distill(&survivors), 0);
    }

    #[test]
    fn distill_prefers_wide_covers_and_keeps_every_unique_bin() {
        let (space, ids) = distill_space();
        let map_of = |bins: &[usize]| {
            let mut m = CovMap::new(&space);
            for &b in bins {
                m.hit(ids[b], true);
            }
            m
        };
        // Three narrow seeds fully covered by one wide one inserted last.
        let mut c = Corpus::new(8);
        for fp in 1..=3u64 {
            add(&mut c, fp, 1, false);
        }
        add(&mut c, 4, 6, false);
        let maps = vec![map_of(&[0]), map_of(&[1]), map_of(&[2]), map_of(&[0, 1, 2])];
        assert_eq!(c.distill(&maps), 3, "wide cover subsumes all three narrow seeds");
        assert_eq!(c.len(), 1);
        assert!(c.contains(4));
    }

    #[test]
    fn export_import_round_trips() {
        let mut c = Corpus::new(8);
        add(&mut c, 1, 5, false);
        add(&mut c, 2, 7, true);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        c.pick_weighted(&mut rng); // non-trivial pick counts
        let mut state = CorpusState::default();
        c.export_into(&mut state);

        let mut d = Corpus::new(8);
        d.import(&state);
        let mut state2 = CorpusState::default();
        d.export_into(&mut state2);
        assert_eq!(state, state2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.instrs(0), c.instrs(0));
    }
}
