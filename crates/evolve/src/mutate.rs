//! ISA-aware mutation operators over decoded instruction sequences.
//!
//! Every operator takes and returns `Vec<Instr>` — the AFL-style byte
//! havoc is replaced by structure-aware edits that cannot produce an
//! undecodable word. The encodability invariant is enforced twice: each
//! operator only writes operand values inside the encoder's accepted
//! ranges, and [`sanitize`] backstops any instruction the encoder still
//! rejects by replacing it with a fresh ISA-valid one. Mutants therefore
//! always decode (`chatfuzz_isa::decode` succeeds on every word), which
//! is what makes the evolutionary arm cheap: no budget is wasted on
//! illegal-instruction traps unless a seed deliberately carries them.
//!
//! Operators (picked by the havoc loop in [`mutate`]):
//!
//! * **operand tweak** — re-roll one field (register, immediate, width,
//!   ordering bits) of one instruction, keeping the opcode;
//! * **dependency-preserving swap** — exchange an *adjacent* pair of
//!   instructions with no register data-flow between them (and no
//!   control-flow/memory/CSR side effects), so the architectural result
//!   is unchanged while the microarchitectural schedule is not;
//! * **replace / clone / delete** — slot-level edits mirroring TheHuzz's
//!   published operators, but on decoded instructions;
//! * **splice** — AFL-style crossover: a prefix of the mutant joined to a
//!   suffix of a second corpus seed;
//! * **idiom injection** — drop in a privilege-entangled template (trap
//!   handler round-trip) or a self-modifying-code patch sequence (with or
//!   without `fence.i` — the BUG1 trigger), the scenario classes random
//!   mutation alone never assembles.

use chatfuzz_baselines::random_instr;
use chatfuzz_isa::{
    encode, AluOp, AmoOp, BranchCond, Csr, CsrOp, CsrSrc, Instr, MemWidth, MulDivOp, Reg, SystemOp,
    CSR_LIST,
};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

fn reg(rng: &mut ChaCha8Rng) -> Reg {
    Reg::new(rng.gen_range(0..32)).expect("in range")
}

/// Replaces `instr` with a fresh ISA-valid instruction if the encoder
/// rejects it — the backstop that keeps the every-mutant-decodes
/// invariant unconditional.
fn sanitize(rng: &mut ChaCha8Rng, instr: &mut Instr) {
    if encode(instr).is_err() {
        *instr = random_instr(rng);
    }
}

/// Re-rolls one operand field of `instr`, keeping its instruction class.
fn tweak_operand(rng: &mut ChaCha8Rng, instr: &mut Instr) {
    match instr {
        Instr::Lui { rd, imm } | Instr::Auipc { rd, imm } => {
            if rng.gen_bool(0.5) {
                *rd = reg(rng);
            } else {
                *imm = i64::from(rng.gen_range(-0x8_0000i32..0x8_0000)) << 12;
            }
        }
        Instr::Jal { rd, offset } => {
            if rng.gen_bool(0.5) {
                *rd = reg(rng);
            } else {
                *offset = i64::from(rng.gen_range(-128i32..128)) * 2;
            }
        }
        Instr::Jalr { rd, rs1, offset } => match rng.gen_range(0..3) {
            0 => *rd = reg(rng),
            1 => *rs1 = reg(rng),
            _ => *offset = rng.gen_range(-2048..=2047),
        },
        Instr::Branch { cond, rs1, rs2, offset } => match rng.gen_range(0..4) {
            0 => {
                *cond = *[
                    BranchCond::Eq,
                    BranchCond::Ne,
                    BranchCond::Lt,
                    BranchCond::Ge,
                    BranchCond::Ltu,
                    BranchCond::Geu,
                ]
                .choose(rng)
                .expect("non-empty");
            }
            1 => *rs1 = reg(rng),
            2 => *rs2 = reg(rng),
            _ => *offset = i64::from(rng.gen_range(-64i32..64)) * 2,
        },
        Instr::Load { width, signed, rd, rs1, offset } => match rng.gen_range(0..4) {
            0 => {
                *width = *[MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D]
                    .choose(rng)
                    .expect("non-empty");
                *signed = *width == MemWidth::D || *signed;
            }
            1 => *rd = reg(rng),
            2 => *rs1 = reg(rng),
            _ => *offset = rng.gen_range(-2048..=2047),
        },
        Instr::Store { width, rs2, rs1, offset } => match rng.gen_range(0..4) {
            0 => {
                *width = *[MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D]
                    .choose(rng)
                    .expect("non-empty");
            }
            1 => *rs2 = reg(rng),
            2 => *rs1 = reg(rng),
            _ => *offset = rng.gen_range(-2048..=2047),
        },
        Instr::OpImm { op, rd, rs1, imm, word } => match rng.gen_range(0..3) {
            0 => *rd = reg(rng),
            1 => *rs1 = reg(rng),
            _ => {
                *imm = if op.is_shift() {
                    rng.gen_range(0..if *word { 32 } else { 64 })
                } else {
                    rng.gen_range(-2048..=2047)
                };
            }
        },
        Instr::Op { op, rd, rs1, rs2, word } => match rng.gen_range(0..4) {
            0 => *rd = reg(rng),
            1 => *rs1 = reg(rng),
            2 => *rs2 = reg(rng),
            _ => {
                let ops = [
                    AluOp::Add,
                    AluOp::Sub,
                    AluOp::Sll,
                    AluOp::Slt,
                    AluOp::Sltu,
                    AluOp::Xor,
                    AluOp::Srl,
                    AluOp::Sra,
                    AluOp::Or,
                    AluOp::And,
                ];
                *op = *ops.choose(rng).expect("non-empty");
                *word = *word && op.has_word_form();
            }
        },
        Instr::MulDiv { op, rd, rs1, rs2, word } => match rng.gen_range(0..4) {
            0 => *rd = reg(rng),
            1 => *rs1 = reg(rng),
            2 => *rs2 = reg(rng),
            _ => {
                let ops = [
                    MulDivOp::Mul,
                    MulDivOp::Mulh,
                    MulDivOp::Mulhsu,
                    MulDivOp::Mulhu,
                    MulDivOp::Div,
                    MulDivOp::Divu,
                    MulDivOp::Rem,
                    MulDivOp::Remu,
                ];
                *op = *ops.choose(rng).expect("non-empty");
                *word = *word && op.has_word_form();
            }
        },
        Instr::Amo { op, width, rd, rs1, rs2, aq, rl } => match rng.gen_range(0..5) {
            0 => {
                let ops = [
                    AmoOp::Swap,
                    AmoOp::Add,
                    AmoOp::Xor,
                    AmoOp::And,
                    AmoOp::Or,
                    AmoOp::Min,
                    AmoOp::Max,
                    AmoOp::Minu,
                    AmoOp::Maxu,
                ];
                *op = *ops.choose(rng).expect("non-empty");
            }
            1 => *width = if rng.gen_bool(0.5) { MemWidth::W } else { MemWidth::D },
            2 => *rd = reg(rng),
            3 => *rs1 = reg(rng),
            _ => {
                *rs2 = reg(rng);
                *aq = rng.gen();
                *rl = rng.gen();
            }
        },
        Instr::LoadReserved { width, rd, rs1, aq, rl } => match rng.gen_range(0..3) {
            0 => *width = if rng.gen_bool(0.5) { MemWidth::W } else { MemWidth::D },
            1 => *rd = reg(rng),
            _ => {
                *rs1 = reg(rng);
                *aq = rng.gen();
                *rl = rng.gen();
            }
        },
        Instr::StoreConditional { width, rd, rs1, rs2, aq, rl } => match rng.gen_range(0..4) {
            0 => *width = if rng.gen_bool(0.5) { MemWidth::W } else { MemWidth::D },
            1 => *rd = reg(rng),
            2 => *rs1 = reg(rng),
            _ => {
                *rs2 = reg(rng);
                *aq = rng.gen();
                *rl = rng.gen();
            }
        },
        Instr::Csr { op, rd, csr, src } => match rng.gen_range(0..4) {
            0 => {
                *op = *[CsrOp::Rw, CsrOp::Rs, CsrOp::Rc].choose(rng).expect("non-empty");
            }
            1 => *rd = reg(rng),
            2 => {
                *csr = if rng.gen_bool(0.7) {
                    CSR_LIST.choose(rng).expect("non-empty").addr()
                } else {
                    rng.gen_range(0..0x1000)
                };
            }
            _ => {
                *src = if rng.gen_bool(0.5) {
                    CsrSrc::Reg(reg(rng))
                } else {
                    CsrSrc::Imm(rng.gen_range(0..32))
                };
            }
        },
        Instr::Fence { pred, succ } => {
            *pred = rng.gen_range(0..16);
            *succ = rng.gen_range(0..16);
        }
        Instr::FenceI => {} // no operands to tweak
        Instr::System(op) => {
            // Never tweak *into* Wfi: it ends the test at the tweak site
            // and everything after it goes dark.
            *op = *[SystemOp::Ecall, SystemOp::Ebreak, SystemOp::Mret, SystemOp::Sret]
                .choose(rng)
                .expect("non-empty");
        }
        Instr::SfenceVma { rs1, rs2 } => {
            *rs1 = reg(rng);
            *rs2 = reg(rng);
        }
    }
    sanitize(rng, instr);
}

/// Whether `a` and `b` may be reordered without changing architectural
/// data flow: no control transfer, no two memory ops (conservative
/// aliasing), no CSR/fence side effects, and no register dependence
/// (RAW, WAR, or WAW) in either direction.
fn independent(a: &Instr, b: &Instr) -> bool {
    let effectful = |i: &Instr| {
        i.is_control_flow()
            || matches!(
                i,
                Instr::Csr { .. } | Instr::Fence { .. } | Instr::FenceI | Instr::SfenceVma { .. }
            )
            || matches!(i, Instr::System(SystemOp::Wfi))
    };
    if effectful(a) || effectful(b) {
        return false;
    }
    if a.is_mem() && b.is_mem() {
        return false;
    }
    if let Some(rd) = a.rd() {
        if b.sources().contains(&rd) || b.rd() == Some(rd) {
            return false;
        }
    }
    if let Some(rd) = b.rd() {
        if a.sources().contains(&rd) {
            return false;
        }
    }
    true
}

/// Swaps one adjacent independent pair, if any exists near a random
/// start position. Returns whether a swap happened.
fn swap_independent(rng: &mut ChaCha8Rng, instrs: &mut [Instr]) -> bool {
    if instrs.len() < 2 {
        return false;
    }
    let start = rng.gen_range(0..instrs.len() - 1);
    // Scan forward (wrapping) for the first swappable adjacent pair so a
    // single unlucky draw does not waste the operator.
    for k in 0..instrs.len() - 1 {
        let i = (start + k) % (instrs.len() - 1);
        if independent(&instrs[i], &instrs[i + 1]) {
            instrs.swap(i, i + 1);
            return true;
        }
    }
    false
}

/// The trap-handler round-trip template (install `mtvec`, `ecall`
/// through the handler, `mret` back) as a fixed-shape instruction
/// block — position-independent, so it can be injected anywhere.
fn trap_idiom() -> Vec<Instr> {
    let t0 = Reg::new(5).expect("t0");
    let t1 = Reg::new(6).expect("t1");
    vec![
        // jal t1, +20 → t1 links to the handler (pc+4), control lands
        // past it.
        Instr::Jal { rd: t1, offset: 20 },
        // handler: bump mepc past the trapping instruction and return.
        Instr::Csr { op: CsrOp::Rs, rd: t0, csr: Csr::MEPC.addr(), src: CsrSrc::Reg(Reg::X0) },
        Instr::OpImm { op: AluOp::Add, rd: t0, rs1: t0, imm: 4, word: false },
        Instr::Csr { op: CsrOp::Rw, rd: Reg::X0, csr: Csr::MEPC.addr(), src: CsrSrc::Reg(t0) },
        Instr::System(SystemOp::Mret),
        // landing: install the handler and take the trap.
        Instr::Csr { op: CsrOp::Rw, rd: Reg::X0, csr: Csr::MTVEC.addr(), src: CsrSrc::Reg(t1) },
        Instr::System(SystemOp::Ecall),
    ]
}

/// A self-modifying-code patch sequence: store an `addi rd, rd, 2` word
/// over the template's own tail slot, optionally `fence.i`, then execute
/// the patched slot — the BUG1 (stale I-cache) trigger shape.
fn smc_idiom(rng: &mut ChaCha8Rng) -> Vec<Instr> {
    let t0 = Reg::new(5).expect("t0");
    let t1 = Reg::new(6).expect("t1");
    let args: Vec<Reg> = Reg::args().collect();
    let rd = *args.choose(rng).expect("non-empty");
    let patch = encode(&Instr::OpImm { op: AluOp::Add, rd, rs1: rd, imm: 2, word: false })
        .expect("encodable patch");
    // li t1, patch via lui+addi (the patch word is always well under
    // 2^31, so the split never overflows the lui immediate).
    let lo = ((i64::from(patch) & 0xfff) << 52) >> 52;
    let hi = i64::from(patch) - lo;
    let with_fence = rng.gen_bool(0.5);
    vec![
        Instr::Auipc { rd: t0, imm: 0 },
        Instr::Lui { rd: t1, imm: hi },
        Instr::OpImm { op: AluOp::Add, rd: t1, rs1: t1, imm: lo, word: false },
        // Patch the slot 6 words past the auipc (offset 24).
        Instr::Store { width: MemWidth::W, rs2: t1, rs1: t0, offset: 24 },
        if with_fence { Instr::FenceI } else { Instr::NOP },
        Instr::NOP,
        Instr::NOP, // ← patched to `addi rd, rd, 2`
    ]
}

/// Splices a prefix of `instrs` onto a suffix of `partner` (AFL-style
/// crossover), capping the result at `max_len`.
pub(crate) fn splice(
    rng: &mut ChaCha8Rng,
    instrs: &mut Vec<Instr>,
    partner: &[Instr],
    max_len: usize,
) {
    if instrs.is_empty() || partner.is_empty() {
        return;
    }
    let cut_a = rng.gen_range(1..=instrs.len());
    let cut_b = rng.gen_range(0..partner.len());
    instrs.truncate(cut_a);
    instrs.extend_from_slice(&partner[cut_b..]);
    instrs.truncate(max_len.max(1));
}

/// Applies `ops` random mutation operators to `instrs` in place. The
/// optional `partner` enables the splice operator; `max_len` caps growth
/// from clone/inject/splice. Fully deterministic given the RNG state.
pub fn mutate(
    rng: &mut ChaCha8Rng,
    instrs: &mut Vec<Instr>,
    partner: Option<&[Instr]>,
    ops: usize,
    max_len: usize,
) {
    let max_len = max_len.max(1);
    for _ in 0..ops.max(1) {
        if instrs.is_empty() {
            instrs.push(random_instr(rng));
        }
        match rng.gen_range(0..100) {
            // Operand tweak — the workhorse.
            0..=39 => {
                let i = rng.gen_range(0..instrs.len());
                tweak_operand(rng, &mut instrs[i]);
            }
            // Dependency-preserving adjacent swap.
            40..=51 => {
                swap_independent(rng, instrs);
            }
            // Replace a slot with a fresh ISA-valid instruction.
            52..=66 => {
                let i = rng.gen_range(0..instrs.len());
                instrs[i] = random_instr(rng);
            }
            // Clone a slot to a random position.
            67..=76 => {
                if instrs.len() < max_len {
                    let i = rng.gen_range(0..instrs.len());
                    let at = rng.gen_range(0..=instrs.len());
                    let copy = instrs[i];
                    instrs.insert(at, copy);
                }
            }
            // Delete a slot (never below one instruction).
            77..=86 => {
                if instrs.len() > 1 {
                    let i = rng.gen_range(0..instrs.len());
                    instrs.remove(i);
                }
            }
            // Splice with the partner seed.
            87..=93 => {
                if let Some(partner) = partner {
                    splice(rng, instrs, partner, max_len);
                }
            }
            // Idiom injection: trap round-trip or SMC patch block.
            _ => {
                let block = if rng.gen_bool(0.5) { trap_idiom() } else { smc_idiom(rng) };
                if instrs.len() + block.len() <= max_len {
                    let at = rng.gen_range(0..=instrs.len());
                    for (k, ins) in block.into_iter().enumerate() {
                        instrs.insert(at + k, ins);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_isa::decode;
    use rand::SeedableRng;

    fn fresh(rng: &mut ChaCha8Rng, n: usize) -> Vec<Instr> {
        (0..n).map(|_| random_instr(rng)).collect()
    }

    #[test]
    fn mutants_always_encode_and_decode() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut seed = fresh(&mut rng, 24);
        let partner = fresh(&mut rng, 24);
        for _ in 0..500 {
            mutate(&mut rng, &mut seed, Some(&partner), 4, 64);
            for instr in &seed {
                let word = encode(instr).unwrap_or_else(|e| panic!("{instr}: {e}"));
                assert_eq!(decode(word).expect("mutant decodes"), *instr);
            }
            assert!(!seed.is_empty() && seed.len() <= 64);
        }
    }

    #[test]
    fn mutation_is_deterministic_per_rng_state() {
        let run = || {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let mut seed = fresh(&mut rng, 16);
            let partner = fresh(&mut rng, 16);
            for _ in 0..50 {
                mutate(&mut rng, &mut seed, Some(&partner), 3, 48);
            }
            seed
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn independent_pairs_share_no_registers_or_effects() {
        let a1 = Reg::new(11).unwrap();
        let a2 = Reg::new(12).unwrap();
        let a3 = Reg::new(13).unwrap();
        let add = |rd, rs1, rs2| Instr::Op { op: AluOp::Add, rd, rs1, rs2, word: false };
        assert!(independent(&add(a1, a2, a2), &add(a3, a2, a2)), "disjoint writes");
        assert!(!independent(&add(a1, a2, a2), &add(a3, a1, a2)), "RAW");
        assert!(!independent(&add(a1, a2, a2), &add(a2, a3, a3)), "WAR");
        assert!(!independent(&add(a1, a2, a2), &add(a1, a3, a3)), "WAW");
        assert!(
            !independent(&Instr::Jal { rd: Reg::X0, offset: 8 }, &add(a1, a2, a2)),
            "control flow never moves"
        );
        let st = Instr::Store { width: MemWidth::D, rs2: a1, rs1: a2, offset: 0 };
        let ld = Instr::Load { width: MemWidth::D, signed: true, rd: a3, rs1: a2, offset: 0 };
        assert!(!independent(&st, &ld), "two memory ops never swap");
    }

    #[test]
    fn trap_idiom_lands_past_its_handler() {
        let block = trap_idiom();
        assert_eq!(block.len(), 7);
        let Instr::Jal { offset, .. } = block[0] else { panic!("leads with jal") };
        assert_eq!(offset, 20, "jal skips the 4-instruction handler plus itself");
        for instr in &block {
            encode(instr).expect("idiom encodes");
        }
    }

    #[test]
    fn smc_idiom_patch_offset_targets_its_own_tail() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..16 {
            let block = smc_idiom(&mut rng);
            assert_eq!(block.len(), 7);
            let Instr::Store { offset, .. } = block[3] else { panic!("store patches") };
            assert_eq!(offset, 24, "patch lands on the final nop");
            for instr in &block {
                encode(instr).expect("idiom encodes");
            }
        }
    }

    #[test]
    fn splice_joins_prefix_and_suffix() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = fresh(&mut rng, 10);
        let b = fresh(&mut rng, 10);
        for _ in 0..50 {
            let mut m = a.clone();
            splice(&mut rng, &mut m, &b, 16);
            assert!(!m.is_empty() && m.len() <= 16);
            // The head comes from `a`.
            assert_eq!(m[0], a[0]);
        }
    }
}
