//! Coverage-guided evolutionary corpus for ChatFuzz — retain, schedule,
//! and mutate interesting inputs as a first-class generator arm.
//!
//! The paper's loop (and its mutation-based ancestor TheHuzz) works
//! because coverage feedback shapes *future* inputs; before this crate,
//! campaigns discarded every input after scoring and the only feedback
//! path was the MABFuzz-style bandit reward. This crate closes the loop
//! AFL-style:
//!
//! * [`Corpus`] retains inputs that advanced cumulative coverage or
//!   triggered a golden/DUT mismatch, deduplicated by their *coverage
//!   fingerprint* (`CovMap::content_hash` of the input's standalone
//!   coverage set, delivered through `Feedback::cov_fingerprint`), and
//!   schedules mutation parents with AFL-style favored/energy scoring —
//!   see the [`corpus`] module docs for the exact model;
//! * [`mutate`](mutate::mutate) operates on *decoded instruction
//!   sequences* (operand tweaks, dependency-preserving adjacent swaps,
//!   block splice/crossover between seeds, havoc, trap-handler and
//!   self-modifying-code idiom injection), so every mutant still
//!   decodes — see the [`mutate`] module docs;
//! * [`EvolveGenerator`] surfaces the pair as an
//!   [`InputGenerator`](chatfuzz_baselines::InputGenerator) arm,
//!   scheduled alongside the random and LM generators by the campaign's
//!   scheduler and fully deterministic under its ChaCha seed.
//!
//! # Feedback wiring
//!
//! The campaign loop computes, per input, the coverage fingerprint and a
//! mismatch flag and hands them back through
//! [`Feedback`](chatfuzz_baselines::Feedback) in
//! `InputGenerator::observe` — the same batch-outcome path every other
//! generator uses; no side channel. The whole generator state (corpus,
//! pick counters, ChaCha stream) exports as a
//! [`GeneratorState`](chatfuzz_baselines::GeneratorState) (corpus half
//! populated) through `InputGenerator::export_state`, rides in the
//! campaign snapshot, and is restored by `import_state` on resume — so a
//! SIGKILLed campaign continues bit-for-bit, retained seeds included.
//! The retained seeds are also published through
//! `InputGenerator::contribute_seeds`, which the campaign's cross-arm
//! exchange feeds to the LM generator's prompt pool.
//!
//! # Examples
//!
//! ```
//! use chatfuzz_baselines::{Feedback, InputGenerator};
//! use chatfuzz_evolve::{EvolveConfig, EvolveGenerator};
//!
//! let mut evolve = EvolveGenerator::new(EvolveConfig::default());
//! let batch = evolve.next_batch(4);
//! // Pretend input 0 advanced coverage: it is retained as a seed.
//! let mut feedback = vec![Feedback::default(); 4];
//! feedback[0].incremental = 17;
//! feedback[0].cov_fingerprint = 0xfeed;
//! evolve.observe(&batch, &feedback);
//! assert_eq!(evolve.corpus_len(), 1);
//! // Later batches mutate the retained seed.
//! assert_eq!(evolve.next_batch(4).len(), 4);
//! ```

pub mod corpus;
pub mod mutate;

pub use corpus::{Corpus, Seed};

use chatfuzz_baselines::{random_instr, CorpusState, Feedback, GeneratorState, InputGenerator};
use chatfuzz_isa::{decode, encode, Instr, INSTR_BYTES};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Parameters of the evolutionary arm.
#[derive(Debug, Clone, Copy)]
pub struct EvolveConfig {
    /// ChaCha seed for parent selection and mutation.
    pub seed: u64,
    /// Instructions per fresh (non-mutant) seed program.
    pub program_len: usize,
    /// Length cap for mutants (clone/splice/idiom growth stops here).
    pub max_len: usize,
    /// Maximum retained corpus seeds (lowest-energy evicted beyond it).
    pub max_seeds: usize,
    /// Probability of emitting a fresh ISA-valid random program even when
    /// the corpus is non-empty (keeps exploration alive).
    pub fresh_rate: f64,
    /// Probability a mutant starts with a splice against a second seed.
    pub splice_rate: f64,
    /// Havoc operators applied per mutant.
    pub mutations: usize,
}

impl Default for EvolveConfig {
    fn default() -> Self {
        EvolveConfig {
            seed: 0xE0_17E5,
            program_len: 24,
            max_len: 48,
            max_seeds: 256,
            fresh_rate: 0.15,
            splice_rate: 0.2,
            mutations: 4,
        }
    }
}

/// FNV-1a over raw bytes — the fingerprint fallback when the caller does
/// not supply a coverage fingerprint (`Feedback::cov_fingerprint == 0`),
/// so direct-driven tests still dedupe on content.
fn byte_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The evolutionary corpus as an input-generator arm.
pub struct EvolveGenerator {
    cfg: EvolveConfig,
    rng: ChaCha8Rng,
    corpus: Corpus,
}

impl EvolveGenerator {
    /// Creates the generator with an empty corpus.
    pub fn new(cfg: EvolveConfig) -> EvolveGenerator {
        EvolveGenerator {
            cfg,
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            corpus: Corpus::new(cfg.max_seeds),
        }
    }

    /// Number of retained corpus seeds.
    pub fn corpus_len(&self) -> usize {
        self.corpus.len()
    }

    /// The retained corpus (inspection/diagnostics).
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// One fresh ISA-valid random program.
    fn fresh_program(&mut self) -> Vec<Instr> {
        (0..self.cfg.program_len.max(1)).map(|_| random_instr(&mut self.rng)).collect()
    }

    /// One input: a fresh program, or an energy-scheduled mutant.
    fn next_program(&mut self) -> Vec<Instr> {
        if self.corpus.is_empty() || self.rng.gen_bool(self.cfg.fresh_rate) {
            return self.fresh_program();
        }
        let parent = self.corpus.pick_weighted(&mut self.rng);
        let mut instrs = self.corpus.instrs(parent).to_vec();
        let partner = if self.corpus.len() >= 2 && self.rng.gen_bool(self.cfg.splice_rate) {
            let p = self.corpus.pick_weighted(&mut self.rng);
            Some(self.corpus.instrs(p).to_vec())
        } else {
            None
        };
        mutate::mutate(
            &mut self.rng,
            &mut instrs,
            partner.as_deref(),
            self.cfg.mutations,
            self.cfg.max_len,
        );
        instrs
    }
}

impl InputGenerator for EvolveGenerator {
    fn name(&self) -> &str {
        "evolve"
    }

    fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|_| {
                let program = self.next_program();
                let mut bytes = Vec::with_capacity(program.len() * INSTR_BYTES);
                for instr in &program {
                    let word = encode(instr).expect("evolve only emits encodable instructions");
                    bytes.extend_from_slice(&word.to_le_bytes());
                }
                bytes
            })
            .collect()
    }

    fn observe(&mut self, batch: &[Vec<u8>], feedback: &[Feedback]) {
        for (bytes, fb) in batch.iter().zip(feedback) {
            if fb.incremental == 0 && !fb.mismatched {
                continue;
            }
            let fingerprint =
                if fb.cov_fingerprint != 0 { fb.cov_fingerprint } else { byte_hash(bytes) };
            if self.corpus.contains(fingerprint) {
                continue;
            }
            // Inputs from this generator always decode; a foreign batch
            // (API misuse or a cross-generator experiment) may not —
            // retain only whole-word, fully decodable inputs, or the
            // corpus would hold a seed that differs from the input that
            // earned its fingerprint.
            if !bytes.len().is_multiple_of(INSTR_BYTES) {
                continue;
            }
            let words: Vec<u32> = bytes
                .chunks_exact(INSTR_BYTES)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            let Ok(instrs) = words.iter().map(|&w| decode(w)).collect::<Result<Vec<_>, _>>() else {
                continue;
            };
            self.corpus.insert(
                instrs,
                words,
                fingerprint,
                fb.incremental as u64,
                fb.mux_covered as u64,
                fb.mismatched,
            );
        }
    }

    fn export_state(&self) -> Option<GeneratorState> {
        let mut corpus = CorpusState::default();
        self.corpus.export_into(&mut corpus);
        Some(GeneratorState {
            generator: self.name().to_string(),
            rng_words: self.rng.export_words(),
            corpus: Some(corpus),
            model: None,
        })
    }

    fn import_state(&mut self, state: &GeneratorState) {
        assert_eq!(state.generator, self.name(), "generator state kind mismatch");
        let corpus = state.corpus.as_ref().expect("evolve state carries a corpus");
        self.rng = ChaCha8Rng::from_words(&state.rng_words).expect("corrupt corpus RNG state");
        self.corpus.import(corpus);
    }

    fn seeds_revision(&self) -> u64 {
        self.corpus.revision()
    }

    fn contribute_seeds(&self, out: &mut Vec<Vec<u32>>) {
        // Publish the retained seeds (insertion order, deterministic) so
        // other arms — the LM generator's prompt pool in particular — can
        // build on the coverage frontier this arm discovered.
        out.extend(self.corpus.seeds().iter().map(|s| s.state.words.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_baselines::valid_fraction;

    fn fed(incremental: usize, fp: u64) -> Feedback {
        Feedback { incremental, cov_fingerprint: fp, ..Default::default() }
    }

    #[test]
    fn batches_are_fully_decodable() {
        let mut g = EvolveGenerator::new(EvolveConfig::default());
        // Seed the corpus so later batches are mutants, then check both
        // generations decode entirely.
        for round in 0..4 {
            let batch = g.next_batch(16);
            for input in &batch {
                assert_eq!(valid_fraction(input), 1.0, "round {round}: every word decodes");
            }
            let feedback: Vec<Feedback> =
                (0..16).map(|i| fed(i % 3, 1000 * round + i as u64)).collect();
            g.observe(&batch, &feedback);
        }
        assert!(g.corpus_len() > 0, "coverage-advancing inputs were retained");
    }

    #[test]
    fn retains_on_coverage_or_mismatch_only() {
        let mut g = EvolveGenerator::new(EvolveConfig::default());
        let batch = g.next_batch(3);
        let feedback = vec![
            fed(0, 1), // no gain, no mismatch → dropped
            fed(5, 2), // coverage gain → retained
            Feedback { mismatched: true, cov_fingerprint: 3, ..Default::default() },
        ];
        g.observe(&batch, &feedback);
        assert_eq!(g.corpus_len(), 2);
    }

    #[test]
    fn dedupes_by_coverage_fingerprint() {
        let mut g = EvolveGenerator::new(EvolveConfig::default());
        let batch = g.next_batch(2);
        g.observe(&batch, &[fed(5, 42), fed(9, 42)]);
        assert_eq!(g.corpus_len(), 1, "same fingerprint retained once");
    }

    #[test]
    fn deterministic_per_seed_through_feedback_rounds() {
        let run = || {
            let mut g = EvolveGenerator::new(EvolveConfig::default());
            let mut out = Vec::new();
            for round in 0u64..5 {
                let batch = g.next_batch(8);
                let feedback: Vec<Feedback> =
                    (0..8).map(|i| fed((i % 2) * 3, round * 100 + i as u64)).collect();
                g.observe(&batch, &feedback);
                out.extend(batch);
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn export_import_resumes_the_exact_stream() {
        let mut g = EvolveGenerator::new(EvolveConfig::default());
        for round in 0u64..3 {
            let batch = g.next_batch(8);
            let feedback: Vec<Feedback> =
                (0..8).map(|i| fed(i % 4, round * 10 + i as u64)).collect();
            g.observe(&batch, &feedback);
        }
        let state = g.export_state().expect("evolve exports state");
        assert_eq!(state.generator, "evolve");
        assert!(state.model.is_none(), "evolve keeps no model state");
        assert!(!state.corpus.as_ref().expect("corpus half").seeds.is_empty());

        let mut restored = EvolveGenerator::new(EvolveConfig::default());
        restored.import_state(&state);
        assert_eq!(restored.corpus_len(), g.corpus_len());
        // The continuation is bit-identical: same batches, same
        // retention decisions.
        for round in 0u64..3 {
            let a = g.next_batch(8);
            let b = restored.next_batch(8);
            assert_eq!(a, b, "round {round} diverged after import");
            let feedback: Vec<Feedback> =
                (0..8).map(|i| fed(i % 3, 900 + round * 10 + i as u64)).collect();
            g.observe(&a, &feedback);
            restored.observe(&b, &feedback);
        }
        assert_eq!(g.export_state(), restored.export_state());
    }

    #[test]
    #[should_panic(expected = "generator state kind mismatch")]
    fn import_rejects_foreign_state() {
        let state = GeneratorState { generator: "other".to_string(), ..Default::default() };
        EvolveGenerator::new(EvolveConfig::default()).import_state(&state);
    }

    #[test]
    fn contributed_seeds_match_the_corpus() {
        let mut g = EvolveGenerator::new(EvolveConfig::default());
        let batch = g.next_batch(4);
        let feedback: Vec<Feedback> = (0..4).map(|i| fed(2, 10 + i)).collect();
        g.observe(&batch, &feedback);
        let mut shared = Vec::new();
        g.contribute_seeds(&mut shared);
        assert_eq!(shared.len(), g.corpus_len());
        for (seed, words) in g.corpus().seeds().iter().zip(&shared) {
            assert_eq!(&seed.state.words, words);
        }
    }

    #[test]
    fn fingerprint_fallback_hashes_bytes() {
        let mut g = EvolveGenerator::new(EvolveConfig::default());
        let batch = g.next_batch(2);
        // No fingerprints supplied: content-hash fallback still dedupes
        // identical inputs and separates distinct ones.
        g.observe(&batch, &[fed(1, 0), fed(1, 0)]);
        let expect = if batch[0] == batch[1] { 1 } else { 2 };
        assert_eq!(g.corpus_len(), expect);
    }
}
