//! Finite-difference validation of every backward pass.
//!
//! For each op we build a tiny graph `loss = reduce(op(inputs))`, compute
//! analytic gradients via the tape, then perturb every input element by
//! ±eps and compare against the central difference.

use chatfuzz_autograd::{Tape, Tensor, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f32 = 1e-3;
const TOL: f32 = 2e-2;

/// Builds the graph, returning the loss node given parameter nodes.
type Builder = dyn Fn(&mut Tape, &[Value]) -> Value;

fn gradcheck(name: &str, inputs: &[Tensor], build: &Builder) {
    // Analytic gradients.
    let mut tape = Tape::new();
    let vals: Vec<Value> = inputs.iter().map(|t| tape.param(t.clone())).collect();
    let loss = build(&mut tape, &vals);
    tape.backward(loss);
    let analytic: Vec<Tensor> = vals
        .iter()
        .map(|v| {
            tape.grad(*v).cloned().unwrap_or_else(|| {
                let t = tape.value(*v);
                Tensor::zeros(t.rows(), t.cols())
            })
        })
        .collect();

    // Numeric gradients.
    for (pi, input) in inputs.iter().enumerate() {
        for i in 0..input.len() {
            let eval = |delta: f32| -> f32 {
                let mut tape = Tape::new();
                let vals: Vec<Value> = inputs
                    .iter()
                    .enumerate()
                    .map(|(pj, t)| {
                        let mut t = t.clone();
                        if pj == pi {
                            t.data_mut()[i] += delta;
                        }
                        tape.param(t)
                    })
                    .collect();
                let loss = build(&mut tape, &vals);
                tape.value(loss).get(0, 0)
            };
            let numeric = (eval(EPS) - eval(-EPS)) / (2.0 * EPS);
            let got = analytic[pi].data()[i];
            let denom = numeric.abs().max(got.abs()).max(1.0);
            assert!(
                (numeric - got).abs() / denom < TOL,
                "{name}: input {pi} element {i}: analytic {got} vs numeric {numeric}"
            );
        }
    }
}

fn rng() -> StdRng {
    StdRng::seed_from_u64(42)
}

#[test]
fn gradcheck_matmul() {
    let mut r = rng();
    let a = Tensor::randn(3, 4, 1.0, &mut r);
    let b = Tensor::randn(4, 2, 1.0, &mut r);
    gradcheck("matmul", &[a, b], &|t, v| {
        let c = t.matmul(v[0], v[1]);
        t.sum_all(c)
    });
}

#[test]
fn gradcheck_matmul_nt() {
    let mut r = rng();
    let a = Tensor::randn(3, 4, 1.0, &mut r);
    let b = Tensor::randn(2, 4, 1.0, &mut r);
    gradcheck("matmul_nt", &[a, b], &|t, v| {
        let c = t.matmul_nt(v[0], v[1]);
        t.sum_all(c)
    });
}

#[test]
fn gradcheck_add_sub_mul() {
    let mut r = rng();
    let a = Tensor::randn(2, 3, 1.0, &mut r);
    let b = Tensor::randn(2, 3, 1.0, &mut r);
    gradcheck("add", &[a.clone(), b.clone()], &|t, v| {
        let c = t.add(v[0], v[1]);
        t.sum_all(c)
    });
    gradcheck("sub", &[a.clone(), b.clone()], &|t, v| {
        let c = t.sub(v[0], v[1]);
        let d = t.mul(c, c);
        t.sum_all(d)
    });
    gradcheck("mul", &[a, b], &|t, v| {
        let c = t.mul(v[0], v[1]);
        t.sum_all(c)
    });
}

#[test]
fn gradcheck_add_row() {
    let mut r = rng();
    let a = Tensor::randn(3, 4, 1.0, &mut r);
    let bias = Tensor::randn(1, 4, 1.0, &mut r);
    gradcheck("add_row", &[a, bias], &|t, v| {
        let c = t.add_row(v[0], v[1]);
        let d = t.mul(c, c);
        t.sum_all(d)
    });
}

#[test]
fn gradcheck_activations() {
    let mut r = rng();
    let a = Tensor::randn(2, 4, 1.0, &mut r);
    gradcheck("gelu", std::slice::from_ref(&a), &|t, v| {
        let c = t.gelu(v[0]);
        t.sum_all(c)
    });
    gradcheck("tanh", std::slice::from_ref(&a), &|t, v| {
        let c = t.tanh(v[0]);
        t.sum_all(c)
    });
    gradcheck("exp", std::slice::from_ref(&a), &|t, v| {
        let c = t.exp(v[0]);
        t.sum_all(c)
    });
    gradcheck("scale", &[a], &|t, v| {
        let c = t.scale(v[0], -1.7);
        t.sum_all(c)
    });
}

#[test]
fn gradcheck_clamp_and_min() {
    // Keep values away from the clamp/min kinks where the derivative is
    // discontinuous and finite differences are unreliable.
    let a = Tensor::from_rows(&[&[-2.0, -0.5, 0.4, 1.9]]);
    let b = Tensor::from_rows(&[&[0.6, -1.5, 1.4, 0.2]]);
    gradcheck("clamp", std::slice::from_ref(&a), &|t, v| {
        let c = t.clamp(v[0], -1.0, 1.0);
        t.sum_all(c)
    });
    gradcheck("min_elem", &[a, b], &|t, v| {
        let c = t.min_elem(v[0], v[1]);
        t.sum_all(c)
    });
}

#[test]
fn gradcheck_layer_norm() {
    let mut r = rng();
    let a = Tensor::randn(3, 6, 1.0, &mut r);
    let gain = Tensor::randn(1, 6, 0.5, &mut r);
    let bias = Tensor::randn(1, 6, 0.5, &mut r);
    gradcheck("layer_norm", &[a, gain, bias], &|t, v| {
        let c = t.layer_norm(v[0], v[1], v[2]);
        let d = t.mul(c, c);
        t.sum_all(d)
    });
}

#[test]
fn gradcheck_causal_softmax() {
    let mut r = rng();
    let a = Tensor::randn(4, 4, 1.0, &mut r);
    let weights = Tensor::randn(4, 4, 1.0, &mut r);
    gradcheck("causal_softmax", &[a, weights], &|t, v| {
        let y = t.causal_softmax(v[0]);
        let w = t.mul(y, v[1]);
        t.sum_all(w)
    });
}

#[test]
fn gradcheck_log_softmax() {
    let mut r = rng();
    let a = Tensor::randn(3, 5, 1.0, &mut r);
    let w = Tensor::randn(3, 5, 1.0, &mut r);
    gradcheck("log_softmax", &[a, w], &|t, v| {
        let y = t.log_softmax(v[0]);
        let z = t.mul(y, v[1]);
        t.sum_all(z)
    });
}

#[test]
fn gradcheck_gather_and_select() {
    let mut r = rng();
    let table = Tensor::randn(5, 3, 1.0, &mut r);
    gradcheck("gather_rows", &[table], &|t, v| {
        let y = t.gather_rows(v[0], &[4, 0, 0, 2]);
        let z = t.mul(y, y);
        t.sum_all(z)
    });
    let a = Tensor::randn(4, 6, 1.0, &mut r);
    gradcheck("select_cols", &[a], &|t, v| {
        let y = t.select_cols(v[0], &[5, 1, 3, 0]);
        let z = t.mul(y, y);
        t.sum_all(z)
    });
}

#[test]
fn gradcheck_cross_entropy() {
    let mut r = rng();
    let logits = Tensor::randn(4, 7, 1.0, &mut r);
    gradcheck("cross_entropy", &[logits], &|t, v| t.cross_entropy(v[0], &[3, 0, 6, 2]));
}

#[test]
fn gradcheck_reductions_and_shapes() {
    let mut r = rng();
    let a = Tensor::randn(3, 8, 1.0, &mut r);
    gradcheck("mean_all", std::slice::from_ref(&a), &|t, v| {
        let m = t.mean_all(v[0]);
        t.sum_all(m)
    });
    gradcheck("slice_concat", std::slice::from_ref(&a), &|t, v| {
        let left = t.slice_cols(v[0], 0, 4);
        let right = t.slice_cols(v[0], 4, 4);
        let swapped = t.concat_cols(&[right, left]);
        let sq = t.mul(swapped, swapped);
        t.sum_all(sq)
    });
    gradcheck("row_mul", &[a], &|t, v| {
        let y = t.row_mul(v[0], &[0.5, -2.0, 1.5]);
        t.sum_all(y)
    });
}

#[test]
fn gradcheck_transformer_block_composite() {
    // A miniature end-to-end block: embeddings -> attention -> MLP -> CE.
    let mut r = rng();
    let d = 4;
    let tcount = 3;
    let vocab = 5;
    let wte = Tensor::randn(vocab, d, 0.5, &mut r);
    let wq = Tensor::randn(d, d, 0.5, &mut r);
    let wk = Tensor::randn(d, d, 0.5, &mut r);
    let wv = Tensor::randn(d, d, 0.5, &mut r);
    let gain = Tensor::full(1, d, 1.0);
    let bias = Tensor::zeros(1, d);
    let ids = [1usize, 3, 0];
    let targets = [3usize, 0, 2];
    let _ = tcount;
    gradcheck("transformer_block", &[wte, wq, wk, wv, gain, bias], &move |t, v| {
        let x = t.gather_rows(v[0], &ids);
        let xn = t.layer_norm(x, v[4], v[5]);
        let q = t.matmul(xn, v[1]);
        let k = t.matmul(xn, v[2]);
        let val = t.matmul(xn, v[3]);
        let scores = t.matmul_nt(q, k);
        let scaled = t.scale(scores, 0.5);
        let att = t.causal_softmax(scaled);
        let ctx = t.matmul(att, val);
        let res = t.add(x, ctx);
        let logits = t.matmul_nt(res, v[0]);
        t.cross_entropy(logits, &targets)
    });
}
