//! Minimal tensor library with reverse-mode automatic differentiation.
//!
//! The paper implements its language model and PPO training on PyTorch;
//! this crate is the Rust substitute: a dense 2-D [`Tensor`] type, a
//! [`Tape`]-based autodiff engine whose op set covers a decoder-only
//! transformer (matmul, layer-norm, causal softmax, GELU, embeddings,
//! cross-entropy) plus the PPO loss surface (exp, clamp, elementwise min,
//! per-row selection/weighting), and an [`Adam`] optimiser with global
//! gradient-norm clipping.
//!
//! Every op's backward pass is validated against central finite
//! differences in `tests/gradcheck.rs`.
//!
//! # Examples
//!
//! ```
//! use chatfuzz_autograd::{Adam, AdamConfig, Tape, Tensor};
//!
//! // One gradient step on a 1-parameter model.
//! let mut w = Tensor::from_rows(&[&[0.0f32]]);
//! let mut opt = Adam::new(AdamConfig::default());
//! let mut tape = Tape::new();
//! let wv = tape.param(w.clone());
//! let sq = tape.mul(wv, wv);
//! let loss = tape.sum_all(sq);
//! tape.backward(loss);
//! let grad = tape.grad(wv).unwrap().clone();
//! opt.step(&mut [&mut w], &[grad]);
//! ```

pub mod adam;
pub mod tape;
pub mod tensor;

pub use adam::{Adam, AdamConfig};
pub use tape::{gelu_scalar, Tape, Value};
pub use tensor::Tensor;
