//! Reverse-mode automatic differentiation on a linear tape.
//!
//! A [`Tape`] records every forward operation; [`Tape::backward`] walks the
//! record in reverse accumulating gradients. The op set is exactly what a
//! decoder-only transformer with a PPO head needs — nothing speculative.
//!
//! # Examples
//!
//! ```
//! use chatfuzz_autograd::{Tape, Tensor};
//!
//! let mut tape = Tape::new();
//! let x = tape.param(Tensor::from_rows(&[&[2.0]]));
//! let y = tape.mul(x, x); // y = x^2
//! let loss = tape.sum_all(y);
//! tape.backward(loss);
//! assert_eq!(tape.grad(x).unwrap().data(), &[4.0]); // dy/dx = 2x
//! ```

use crate::tensor::Tensor;

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Value(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    MatMul { a: usize, b: usize },
    MatMulNT { a: usize, b: usize },
    Add { a: usize, b: usize },
    AddRow { a: usize, bias: usize },
    Sub { a: usize, b: usize },
    Mul { a: usize, b: usize },
    Scale { a: usize, c: f32 },
    AddConst { a: usize },
    Gelu { a: usize },
    Tanh { a: usize },
    Exp { a: usize },
    Clamp { a: usize, lo: f32, hi: f32 },
    MinElem { a: usize, b: usize },
    LayerNorm { a: usize, gain: usize, bias: usize },
    CausalSoftmax { a: usize },
    LogSoftmax { a: usize },
    GatherRows { table: usize, ids: Vec<usize> },
    SelectCols { a: usize, ids: Vec<usize> },
    CrossEntropy { logits: usize, targets: Vec<usize> },
    MeanAll { a: usize },
    SumAll { a: usize },
    SliceCols { a: usize, start: usize },
    ConcatCols { parts: Vec<usize> },
    RowMul { a: usize, weights: Vec<f32> },
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    aux: Option<Tensor>,
    op: Op,
    is_param: bool,
}

/// The autodiff tape.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Tape {
        Tape { nodes: Vec::new() }
    }

    fn push(&mut self, value: Tensor, op: Op) -> Value {
        self.push_aux(value, op, None)
    }

    fn push_aux(&mut self, value: Tensor, op: Op, aux: Option<Tensor>) -> Value {
        self.nodes.push(Node { value, grad: None, aux, op, is_param: false });
        Value(self.nodes.len() - 1)
    }

    /// Registers a constant input (gradient computed but usually ignored).
    pub fn input(&mut self, t: Tensor) -> Value {
        self.push(t, Op::Leaf)
    }

    /// Registers a trainable parameter (gradient will be read back).
    pub fn param(&mut self, t: Tensor) -> Value {
        let v = self.push(t, Op::Leaf);
        self.nodes[v.0].is_param = true;
        v
    }

    /// The forward value of a node.
    pub fn value(&self, v: Value) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of a node (after [`Tape::backward`]).
    pub fn grad(&self, v: Value) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    /// `a @ b`.
    pub fn matmul(&mut self, a: Value, b: Value) -> Value {
        let out = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(out, Op::MatMul { a: a.0, b: b.0 })
    }

    /// `a @ b^T`.
    pub fn matmul_nt(&mut self, a: Value, b: Value) -> Value {
        let out = self.nodes[a.0].value.matmul_nt(&self.nodes[b.0].value);
        self.push(out, Op::MatMulNT { a: a.0, b: b.0 })
    }

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: Value, b: Value) -> Value {
        let mut out = self.nodes[a.0].value.clone();
        out.add_assign(&self.nodes[b.0].value);
        self.push(out, Op::Add { a: a.0, b: b.0 })
    }

    /// `a + bias` broadcasting a `[1, n]` bias over every row.
    pub fn add_row(&mut self, a: Value, bias: Value) -> Value {
        let (av, bv) = (&self.nodes[a.0].value, &self.nodes[bias.0].value);
        assert_eq!(bv.rows(), 1, "bias must be a row vector");
        assert_eq!(av.cols(), bv.cols(), "bias width");
        let mut out = av.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                let v = out.get(r, c) + bv.get(0, c);
                out.set(r, c, v);
            }
        }
        self.push(out, Op::AddRow { a: a.0, bias: bias.0 })
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: Value, b: Value) -> Value {
        let (av, bv) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        let data = av.data().iter().zip(bv.data()).map(|(x, y)| x - y).collect();
        let out = Tensor::new(av.rows(), av.cols(), data);
        self.push(out, Op::Sub { a: a.0, b: b.0 })
    }

    /// Elementwise `a * b`.
    pub fn mul(&mut self, a: Value, b: Value) -> Value {
        let (av, bv) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        let data = av.data().iter().zip(bv.data()).map(|(x, y)| x * y).collect();
        let out = Tensor::new(av.rows(), av.cols(), data);
        self.push(out, Op::Mul { a: a.0, b: b.0 })
    }

    /// `a * c` for scalar `c`.
    pub fn scale(&mut self, a: Value, c: f32) -> Value {
        let mut out = self.nodes[a.0].value.clone();
        out.scale_assign(c);
        self.push(out, Op::Scale { a: a.0, c })
    }

    /// `a + c` for scalar `c`.
    pub fn add_const(&mut self, a: Value, c: f32) -> Value {
        let mut out = self.nodes[a.0].value.clone();
        for x in out.data_mut() {
            *x += c;
        }
        self.push(out, Op::AddConst { a: a.0 })
    }

    /// GELU activation (tanh approximation, as in GPT-2).
    pub fn gelu(&mut self, a: Value) -> Value {
        let av = &self.nodes[a.0].value;
        let data = av.data().iter().map(|&x| gelu_fwd(x)).collect();
        let out = Tensor::new(av.rows(), av.cols(), data);
        self.push(out, Op::Gelu { a: a.0 })
    }

    /// Elementwise `tanh`.
    pub fn tanh(&mut self, a: Value) -> Value {
        let av = &self.nodes[a.0].value;
        let data = av.data().iter().map(|x| x.tanh()).collect();
        let out = Tensor::new(av.rows(), av.cols(), data);
        self.push(out, Op::Tanh { a: a.0 })
    }

    /// Elementwise `exp`.
    pub fn exp(&mut self, a: Value) -> Value {
        let av = &self.nodes[a.0].value;
        let data = av.data().iter().map(|x| x.exp()).collect();
        let out = Tensor::new(av.rows(), av.cols(), data);
        self.push(out, Op::Exp { a: a.0 })
    }

    /// Elementwise clamp to `[lo, hi]` (zero gradient outside the band).
    pub fn clamp(&mut self, a: Value, lo: f32, hi: f32) -> Value {
        let av = &self.nodes[a.0].value;
        let data = av.data().iter().map(|x| x.clamp(lo, hi)).collect();
        let out = Tensor::new(av.rows(), av.cols(), data);
        self.push(out, Op::Clamp { a: a.0, lo, hi })
    }

    /// Elementwise minimum (gradient flows to the smaller operand; ties to
    /// `a`).
    pub fn min_elem(&mut self, a: Value, b: Value) -> Value {
        let (av, bv) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        let data = av.data().iter().zip(bv.data()).map(|(x, y)| x.min(*y)).collect();
        let out = Tensor::new(av.rows(), av.cols(), data);
        self.push(out, Op::MinElem { a: a.0, b: b.0 })
    }

    /// Row-wise layer norm with learned gain/bias (`[1, n]` each).
    #[allow(clippy::needless_range_loop)] // lock-stepped row/param indexing
    pub fn layer_norm(&mut self, a: Value, gain: Value, bias: Value) -> Value {
        const EPS: f32 = 1e-5;
        let av = &self.nodes[a.0].value;
        let (gv, bv) = (&self.nodes[gain.0].value, &self.nodes[bias.0].value);
        let n = av.cols();
        let mut out = Tensor::zeros(av.rows(), n);
        // aux row r: [xhat..., rstd] packed as [rows, n+1]
        let mut aux = Tensor::zeros(av.rows(), n + 1);
        for r in 0..av.rows() {
            let row = av.row(r);
            let mean = row.iter().sum::<f32>() / n as f32;
            let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
            let rstd = 1.0 / (var + EPS).sqrt();
            for c in 0..n {
                let xhat = (row[c] - mean) * rstd;
                aux.set(r, c, xhat);
                out.set(r, c, xhat * gv.get(0, c) + bv.get(0, c));
            }
            aux.set(r, n, rstd);
        }
        self.push_aux(out, Op::LayerNorm { a: a.0, gain: gain.0, bias: bias.0 }, Some(aux))
    }

    /// Causal row softmax for attention scores `[T, T]`: row `i` is a
    /// softmax over columns `0..=i`; masked entries are exactly 0.
    #[allow(clippy::needless_range_loop)] // triangular 0..=i indexing
    pub fn causal_softmax(&mut self, a: Value) -> Value {
        let av = &self.nodes[a.0].value;
        assert_eq!(av.rows(), av.cols(), "attention scores must be square");
        let t = av.rows();
        let mut out = Tensor::zeros(t, t);
        for i in 0..t {
            let row = av.row(i);
            let max = row[..=i].iter().cloned().fold(f32::MIN, f32::max);
            let mut denom = 0.0;
            for j in 0..=i {
                denom += (row[j] - max).exp();
            }
            for j in 0..=i {
                out.set(i, j, (row[j] - max).exp() / denom);
            }
        }
        self.push(out, Op::CausalSoftmax { a: a.0 })
    }

    /// Row-wise log-softmax.
    #[allow(clippy::needless_range_loop)] // lock-stepped row indexing
    pub fn log_softmax(&mut self, a: Value) -> Value {
        let av = &self.nodes[a.0].value;
        let mut out = Tensor::zeros(av.rows(), av.cols());
        for r in 0..av.rows() {
            let row = av.row(r);
            let max = row.iter().cloned().fold(f32::MIN, f32::max);
            let lse = max + row.iter().map(|x| (x - max).exp()).sum::<f32>().ln();
            for c in 0..av.cols() {
                out.set(r, c, row[c] - lse);
            }
        }
        self.push(out, Op::LogSoftmax { a: a.0 })
    }

    /// Gathers rows of `table` by index (embedding lookup).
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn gather_rows(&mut self, table: Value, ids: &[usize]) -> Value {
        let tv = &self.nodes[table.0].value;
        let mut out = Tensor::zeros(ids.len(), tv.cols());
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < tv.rows(), "gather id out of range");
            out.data_mut()[r * tv.cols()..(r + 1) * tv.cols()].copy_from_slice(tv.row(id));
        }
        self.push(out, Op::GatherRows { table: table.0, ids: ids.to_vec() })
    }

    /// Per-row column selection: `out[i, 0] = a[i, ids[i]]` (token
    /// log-probability extraction).
    pub fn select_cols(&mut self, a: Value, ids: &[usize]) -> Value {
        let av = &self.nodes[a.0].value;
        assert_eq!(av.rows(), ids.len(), "one id per row");
        let mut out = Tensor::zeros(ids.len(), 1);
        for (r, &id) in ids.iter().enumerate() {
            out.set(r, 0, av.get(r, id));
        }
        self.push(out, Op::SelectCols { a: a.0, ids: ids.to_vec() })
    }

    /// Mean cross-entropy of logits `[T, V]` against integer targets.
    pub fn cross_entropy(&mut self, logits: Value, targets: &[usize]) -> Value {
        let lv = &self.nodes[logits.0].value;
        assert_eq!(lv.rows(), targets.len(), "one target per row");
        let mut loss = 0.0;
        for (r, &t) in targets.iter().enumerate() {
            let row = lv.row(r);
            let max = row.iter().cloned().fold(f32::MIN, f32::max);
            let lse = max + row.iter().map(|x| (x - max).exp()).sum::<f32>().ln();
            loss -= row[t] - lse;
        }
        loss /= targets.len() as f32;
        let out = Tensor::new(1, 1, vec![loss]);
        self.push(out, Op::CrossEntropy { logits: logits.0, targets: targets.to_vec() })
    }

    /// Mean over all elements (scalar `[1, 1]`).
    pub fn mean_all(&mut self, a: Value) -> Value {
        let av = &self.nodes[a.0].value;
        let m = av.data().iter().sum::<f32>() / av.len() as f32;
        self.push(Tensor::new(1, 1, vec![m]), Op::MeanAll { a: a.0 })
    }

    /// Sum over all elements (scalar `[1, 1]`).
    pub fn sum_all(&mut self, a: Value) -> Value {
        let av = &self.nodes[a.0].value;
        let s = av.data().iter().sum::<f32>();
        self.push(Tensor::new(1, 1, vec![s]), Op::SumAll { a: a.0 })
    }

    /// Column slice `a[:, start..start+len]`.
    pub fn slice_cols(&mut self, a: Value, start: usize, len: usize) -> Value {
        let av = &self.nodes[a.0].value;
        assert!(start + len <= av.cols(), "slice out of range");
        let mut out = Tensor::zeros(av.rows(), len);
        for r in 0..av.rows() {
            out.data_mut()[r * len..(r + 1) * len].copy_from_slice(&av.row(r)[start..start + len]);
        }
        self.push(out, Op::SliceCols { a: a.0, start })
    }

    /// Concatenates tensors column-wise.
    pub fn concat_cols(&mut self, parts: &[Value]) -> Value {
        assert!(!parts.is_empty(), "empty concat");
        let rows = self.nodes[parts[0].0].value.rows();
        let total: usize = parts.iter().map(|p| self.nodes[p.0].value.cols()).sum();
        let mut out = Tensor::zeros(rows, total);
        let mut at = 0;
        for p in parts {
            let pv = &self.nodes[p.0].value;
            assert_eq!(pv.rows(), rows, "concat row mismatch");
            for r in 0..rows {
                out.data_mut()[r * total + at..r * total + at + pv.cols()]
                    .copy_from_slice(pv.row(r));
            }
            at += pv.cols();
        }
        self.push(out, Op::ConcatCols { parts: parts.iter().map(|p| p.0).collect() })
    }

    /// Multiplies each row `i` of `a` by scalar `weights[i]` (per-token
    /// advantage weighting).
    pub fn row_mul(&mut self, a: Value, weights: &[f32]) -> Value {
        let av = &self.nodes[a.0].value;
        assert_eq!(av.rows(), weights.len(), "one weight per row");
        let mut out = av.clone();
        for (r, w) in weights.iter().enumerate() {
            for c in 0..out.cols() {
                let v = out.get(r, c) * w;
                out.set(r, c, v);
            }
        }
        self.push(out, Op::RowMul { a: a.0, weights: weights.to_vec() })
    }

    /// Runs reverse-mode accumulation from a scalar loss node.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not `[1, 1]`.
    #[allow(clippy::needless_range_loop)] // lock-stepped probability/target rows
    pub fn backward(&mut self, loss: Value) {
        {
            let l = &self.nodes[loss.0].value;
            assert_eq!((l.rows(), l.cols()), (1, 1), "loss must be scalar");
        }
        self.nodes[loss.0].grad = Some(Tensor::new(1, 1, vec![1.0]));
        for i in (0..=loss.0).rev() {
            let Some(g) = self.nodes[i].grad.clone() else { continue };
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf => {}
                Op::MatMul { a, b } => {
                    let da = g.matmul_nt(&self.nodes[b].value);
                    let db = self.nodes[a].value.matmul_tn(&g);
                    self.accum(a, da);
                    self.accum(b, db);
                }
                Op::MatMulNT { a, b } => {
                    let da = g.matmul(&self.nodes[b].value);
                    let db = g.matmul_tn(&self.nodes[a].value);
                    self.accum(a, da);
                    self.accum(b, db);
                }
                Op::Add { a, b } => {
                    self.accum(a, g.clone());
                    self.accum(b, g);
                }
                Op::AddRow { a, bias } => {
                    let mut db = Tensor::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            let v = db.get(0, c) + g.get(r, c);
                            db.set(0, c, v);
                        }
                    }
                    self.accum(a, g);
                    self.accum(bias, db);
                }
                Op::Sub { a, b } => {
                    let mut neg = g.clone();
                    neg.scale_assign(-1.0);
                    self.accum(a, g);
                    self.accum(b, neg);
                }
                Op::Mul { a, b } => {
                    let da = elementwise(&g, &self.nodes[b].value, |x, y| x * y);
                    let db = elementwise(&g, &self.nodes[a].value, |x, y| x * y);
                    self.accum(a, da);
                    self.accum(b, db);
                }
                Op::Scale { a, c } => {
                    let mut da = g;
                    da.scale_assign(c);
                    self.accum(a, da);
                }
                Op::AddConst { a } => self.accum(a, g),
                Op::Gelu { a } => {
                    let da = elementwise(&g, &self.nodes[a].value, |gg, x| gg * gelu_bwd(x));
                    self.accum(a, da);
                }
                Op::Tanh { a } => {
                    let da = elementwise(&g, &self.nodes[i].value, |gg, y| gg * (1.0 - y * y));
                    self.accum(a, da);
                }
                Op::Exp { a } => {
                    let da = elementwise(&g, &self.nodes[i].value, |gg, y| gg * y);
                    self.accum(a, da);
                }
                Op::Clamp { a, lo, hi } => {
                    let da = elementwise(&g, &self.nodes[a].value, |gg, x| {
                        if x > lo && x < hi {
                            gg
                        } else {
                            0.0
                        }
                    });
                    self.accum(a, da);
                }
                Op::MinElem { a, b } => {
                    let av = self.nodes[a].value.clone();
                    let bv = self.nodes[b].value.clone();
                    let da = elementwise3(&g, &av, &bv, |gg, x, y| if x <= y { gg } else { 0.0 });
                    let db = elementwise3(&g, &av, &bv, |gg, x, y| if x <= y { 0.0 } else { gg });
                    self.accum(a, da);
                    self.accum(b, db);
                }
                Op::LayerNorm { a, gain, bias } => {
                    let aux = self.nodes[i].aux.clone().expect("layernorm aux");
                    let gv = self.nodes[gain].value.clone();
                    let n = g.cols();
                    let mut da = Tensor::zeros(g.rows(), n);
                    let mut dgain = Tensor::zeros(1, n);
                    let mut dbias = Tensor::zeros(1, n);
                    for r in 0..g.rows() {
                        let rstd = aux.get(r, n);
                        let mut sum_gdy = 0.0;
                        let mut sum_gdy_xhat = 0.0;
                        for c in 0..n {
                            let xhat = aux.get(r, c);
                            let gdy = g.get(r, c) * gv.get(0, c);
                            sum_gdy += gdy;
                            sum_gdy_xhat += gdy * xhat;
                            dgain.set(0, c, dgain.get(0, c) + g.get(r, c) * xhat);
                            dbias.set(0, c, dbias.get(0, c) + g.get(r, c));
                        }
                        for c in 0..n {
                            let xhat = aux.get(r, c);
                            let gdy = g.get(r, c) * gv.get(0, c);
                            let v =
                                rstd * (gdy - sum_gdy / n as f32 - xhat * sum_gdy_xhat / n as f32);
                            da.set(r, c, v);
                        }
                    }
                    self.accum(a, da);
                    self.accum(gain, dgain);
                    self.accum(bias, dbias);
                }
                Op::CausalSoftmax { a } => {
                    let y = self.nodes[i].value.clone();
                    let t = y.rows();
                    let mut da = Tensor::zeros(t, t);
                    for r in 0..t {
                        let mut dot = 0.0;
                        for c in 0..=r {
                            dot += g.get(r, c) * y.get(r, c);
                        }
                        for c in 0..=r {
                            da.set(r, c, y.get(r, c) * (g.get(r, c) - dot));
                        }
                    }
                    self.accum(a, da);
                }
                Op::LogSoftmax { a } => {
                    let y = self.nodes[i].value.clone();
                    let mut da = Tensor::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let gsum: f32 = g.row(r).iter().sum();
                        for c in 0..y.cols() {
                            da.set(r, c, g.get(r, c) - y.get(r, c).exp() * gsum);
                        }
                    }
                    self.accum(a, da);
                }
                Op::GatherRows { table, ids } => {
                    let cols = g.cols();
                    let mut dt = Tensor::zeros(self.nodes[table].value.rows(), cols);
                    for (r, &id) in ids.iter().enumerate() {
                        for c in 0..cols {
                            dt.set(id, c, dt.get(id, c) + g.get(r, c));
                        }
                    }
                    self.accum(table, dt);
                }
                Op::SelectCols { a, ids } => {
                    let av_shape = (self.nodes[a].value.rows(), self.nodes[a].value.cols());
                    let mut da = Tensor::zeros(av_shape.0, av_shape.1);
                    for (r, &id) in ids.iter().enumerate() {
                        da.set(r, id, g.get(r, 0));
                    }
                    self.accum(a, da);
                }
                Op::CrossEntropy { logits, targets } => {
                    let lv = self.nodes[logits].value.clone();
                    let gs = g.get(0, 0) / targets.len() as f32;
                    let mut dl = Tensor::zeros(lv.rows(), lv.cols());
                    for (r, &t) in targets.iter().enumerate() {
                        let row = lv.row(r);
                        let max = row.iter().cloned().fold(f32::MIN, f32::max);
                        let denom: f32 = row.iter().map(|x| (x - max).exp()).sum();
                        for c in 0..lv.cols() {
                            let p = (row[c] - max).exp() / denom;
                            let delta = if c == t { 1.0 } else { 0.0 };
                            dl.set(r, c, (p - delta) * gs);
                        }
                    }
                    self.accum(logits, dl);
                }
                Op::MeanAll { a } => {
                    let shape = (self.nodes[a].value.rows(), self.nodes[a].value.cols());
                    let v = g.get(0, 0) / (shape.0 * shape.1) as f32;
                    self.accum(a, Tensor::full(shape.0, shape.1, v));
                }
                Op::SumAll { a } => {
                    let shape = (self.nodes[a].value.rows(), self.nodes[a].value.cols());
                    self.accum(a, Tensor::full(shape.0, shape.1, g.get(0, 0)));
                }
                Op::SliceCols { a, start } => {
                    let shape = (self.nodes[a].value.rows(), self.nodes[a].value.cols());
                    let mut da = Tensor::zeros(shape.0, shape.1);
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            da.set(r, start + c, g.get(r, c));
                        }
                    }
                    self.accum(a, da);
                }
                Op::ConcatCols { parts } => {
                    let mut at = 0;
                    for p in parts {
                        let cols = self.nodes[p].value.cols();
                        let mut dp = Tensor::zeros(g.rows(), cols);
                        for r in 0..g.rows() {
                            for c in 0..cols {
                                dp.set(r, c, g.get(r, at + c));
                            }
                        }
                        at += cols;
                        self.accum(p, dp);
                    }
                }
                Op::RowMul { a, weights } => {
                    let mut da = g.clone();
                    for (r, w) in weights.iter().enumerate() {
                        for c in 0..da.cols() {
                            let v = da.get(r, c) * w;
                            da.set(r, c, v);
                        }
                    }
                    self.accum(a, da);
                }
            }
        }
    }

    fn accum(&mut self, id: usize, delta: Tensor) {
        match &mut self.nodes[id].grad {
            Some(g) => g.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        }
    }
}

fn elementwise(g: &Tensor, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    let data = g.data().iter().zip(other.data()).map(|(a, b)| f(*a, *b)).collect();
    Tensor::new(g.rows(), g.cols(), data)
}

fn elementwise3(g: &Tensor, x: &Tensor, y: &Tensor, f: impl Fn(f32, f32, f32) -> f32) -> Tensor {
    let data =
        g.data().iter().zip(x.data()).zip(y.data()).map(|((a, b), c)| f(*a, *b, *c)).collect();
    Tensor::new(g.rows(), g.cols(), data)
}

const GELU_S: f32 = 0.797_884_6; // sqrt(2/pi)
const GELU_C: f32 = 0.044_715;

/// The scalar GELU forward (tanh approximation) the [`Tape::gelu`] op
/// applies elementwise. Public so tape-free inference paths (the KV-cached
/// decoder in `chatfuzz-lm`) compute bit-identical activations.
pub fn gelu_scalar(x: f32) -> f32 {
    gelu_fwd(x)
}

fn gelu_fwd(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_S * (x + GELU_C * x * x * x)).tanh())
}

fn gelu_bwd(x: f32) -> f32 {
    let inner = GELU_S * (x + GELU_C * x * x * x);
    let t = inner.tanh();
    let dinner = GELU_S * (1.0 + 3.0 * GELU_C * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_rule_through_matmul() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::from_rows(&[&[1.0, 2.0]]));
        let b = tape.param(Tensor::from_rows(&[&[3.0], &[4.0]]));
        let c = tape.matmul(a, b); // [1x1] = 11
        let loss = tape.sum_all(c);
        tape.backward(loss);
        assert_eq!(tape.value(c).data(), &[11.0]);
        assert_eq!(tape.grad(a).unwrap().data(), &[3.0, 4.0]);
        assert_eq!(tape.grad(b).unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn grad_accumulates_across_uses() {
        let mut tape = Tape::new();
        let x = tape.param(Tensor::from_rows(&[&[3.0]]));
        let y = tape.add(x, x); // y = 2x
        let loss = tape.sum_all(y);
        tape.backward(loss);
        assert_eq!(tape.grad(x).unwrap().data(), &[2.0]);
    }

    #[test]
    fn cross_entropy_gradient_is_softmax_minus_onehot() {
        let mut tape = Tape::new();
        let logits = tape.param(Tensor::from_rows(&[&[0.0, 0.0]]));
        let loss = tape.cross_entropy(logits, &[1]);
        tape.backward(loss);
        let g = tape.grad(logits).unwrap();
        assert!((g.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((g.get(0, 1) + 0.5).abs() < 1e-6);
    }

    #[test]
    fn causal_softmax_masks_strictly() {
        let mut tape = Tape::new();
        let a = tape.input(Tensor::from_rows(&[&[1.0, 9.0], &[1.0, 1.0]]));
        let y = tape.causal_softmax(a);
        let yv = tape.value(y);
        assert_eq!(yv.get(0, 0), 1.0, "row 0 sees only col 0");
        assert_eq!(yv.get(0, 1), 0.0);
        assert!((yv.get(1, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn min_elem_routes_gradient() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::from_rows(&[&[1.0, 5.0]]));
        let b = tape.param(Tensor::from_rows(&[&[2.0, 3.0]]));
        let m = tape.min_elem(a, b);
        let loss = tape.sum_all(m);
        tape.backward(loss);
        assert_eq!(tape.grad(a).unwrap().data(), &[1.0, 0.0]);
        assert_eq!(tape.grad(b).unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn gather_rows_scatters_gradient() {
        let mut tape = Tape::new();
        let table = tape.param(Tensor::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]));
        let picked = tape.gather_rows(table, &[1, 1, 0]);
        let loss = tape.sum_all(picked);
        tape.backward(loss);
        let g = tape.grad(table).unwrap();
        assert_eq!(g.data(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_requires_scalar() {
        let mut tape = Tape::new();
        let a = tape.param(Tensor::zeros(2, 2));
        tape.backward(a);
    }
}
