//! Adam optimiser with global-norm gradient clipping.

use crate::tensor::Tensor;

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Global gradient-norm clip (0 disables clipping).
    pub grad_clip: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig { lr: 3e-4, beta1: 0.9, beta2: 0.999, eps: 1e-8, grad_clip: 1.0 }
    }
}

/// The optimiser state (one first/second moment per parameter tensor).
#[derive(Debug)]
pub struct Adam {
    cfg: AdamConfig,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an optimiser; moment buffers are allocated lazily to match
    /// the first step's parameter shapes.
    pub fn new(cfg: AdamConfig) -> Adam {
        Adam { cfg, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The accumulated first/second moment tensors (empty before the
    /// first step — moments allocate lazily), for checkpointing.
    pub fn moments(&self) -> (&[Tensor], &[Tensor]) {
        (&self.m, &self.v)
    }

    /// Restores the optimiser's accumulated state (step counter and
    /// moment tensors) from a checkpoint, so bias correction and the
    /// update trajectory continue bit-for-bit. Pass empty moment vectors
    /// to restore a never-stepped optimiser.
    ///
    /// # Panics
    ///
    /// Panics if the two moment lists differ in length or shape.
    pub fn restore(&mut self, steps: u64, m: Vec<Tensor>, v: Vec<Tensor>) {
        assert_eq!(m.len(), v.len(), "moment list lengths differ");
        for (a, b) in m.iter().zip(&v) {
            assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "moment shapes differ");
        }
        self.t = steps;
        self.m = m;
        self.v = v;
    }

    /// Applies one update. `params` and `grads` must be index-aligned and
    /// keep the same shapes across calls.
    ///
    /// Returns the (pre-clip) global gradient norm.
    ///
    /// # Panics
    ///
    /// Panics if the counts or shapes drift between calls.
    pub fn step(&mut self, params: &mut [&mut Tensor], grads: &[Tensor]) -> f32 {
        assert_eq!(params.len(), grads.len(), "param/grad count mismatch");
        if self.m.is_empty() {
            self.m = grads.iter().map(|g| Tensor::zeros(g.rows(), g.cols())).collect();
            self.v = grads.iter().map(|g| Tensor::zeros(g.rows(), g.cols())).collect();
        }
        assert_eq!(self.m.len(), params.len(), "optimiser state count drift");

        let mut sq = 0.0f32;
        for g in grads {
            sq += g.data().iter().map(|x| x * x).sum::<f32>();
        }
        let norm = sq.sqrt();
        let clip_scale = if self.cfg.grad_clip > 0.0 && norm > self.cfg.grad_clip {
            self.cfg.grad_clip / norm
        } else {
            1.0
        };

        self.t += 1;
        let bc1 = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.cfg.beta2.powi(self.t as i32);
        for ((p, g), (m, v)) in
            params.iter_mut().zip(grads).zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            assert_eq!((p.rows(), p.cols()), (g.rows(), g.cols()), "shape drift");
            for i in 0..p.len() {
                let gi = g.data()[i] * clip_scale;
                m.data_mut()[i] = self.cfg.beta1 * m.data()[i] + (1.0 - self.cfg.beta1) * gi;
                v.data_mut()[i] = self.cfg.beta2 * v.data()[i] + (1.0 - self.cfg.beta2) * gi * gi;
                let mhat = m.data()[i] / bc1;
                let vhat = v.data()[i] / bc2;
                p.data_mut()[i] -= self.cfg.lr * mhat / (vhat.sqrt() + self.cfg.eps);
            }
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimising f(x) = (x-3)^2 converges to 3.
    #[test]
    fn converges_on_quadratic() {
        let mut x = Tensor::from_rows(&[&[0.0f32]]);
        let mut adam = Adam::new(AdamConfig { lr: 0.1, ..Default::default() });
        for _ in 0..300 {
            let g = Tensor::from_rows(&[&[2.0 * (x.get(0, 0) - 3.0)]]);
            adam.step(&mut [&mut x], &[g]);
        }
        assert!((x.get(0, 0) - 3.0).abs() < 1e-2, "x = {}", x.get(0, 0));
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut x = Tensor::from_rows(&[&[0.0f32]]);
        let mut adam = Adam::new(AdamConfig { lr: 0.1, grad_clip: 1.0, ..Default::default() });
        let norm = adam.step(&mut [&mut x], &[Tensor::from_rows(&[&[1000.0]])]);
        assert_eq!(norm, 1000.0, "returned norm is pre-clip");
        assert!(x.get(0, 0).abs() <= 0.11, "update was clipped");
    }

    #[test]
    #[should_panic(expected = "param/grad count mismatch")]
    fn rejects_mismatched_lengths() {
        let mut x = Tensor::zeros(1, 1);
        let mut adam = Adam::new(AdamConfig::default());
        adam.step(&mut [&mut x], &[]);
    }
}
