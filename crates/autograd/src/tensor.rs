//! Dense 2-D `f32` tensors (the only shape the mini-GPT needs).

use rand::Rng;
use std::fmt;

/// A row-major 2-D tensor.
///
/// # Examples
///
/// ```
/// use chatfuzz_autograd::Tensor;
///
/// let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(t.rows(), 2);
/// assert_eq!(t.get(1, 0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { rows, cols, data }
    }

    /// All-zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Constant-filled tensor.
    pub fn full(rows: usize, cols: usize, value: f32) -> Tensor {
        Tensor { rows, cols, data: vec![value; rows * cols] }
    }

    /// Gaussian-initialised tensor (Box–Muller, seeded by the caller's RNG).
    pub fn randn<R: Rng>(rows: usize, cols: usize, std: f32, rng: &mut R) -> Tensor {
        let mut data = Vec::with_capacity(rows * cols);
        while data.len() < rows * cols {
            let u1: f32 = rng.gen_range(1e-7f32..1.0);
            let u2: f32 = rng.gen_range(0.0f32..1.0);
            let mag = (-2.0 * u1.ln()).sqrt();
            data.push(mag * (2.0 * std::f32::consts::PI * u2).cos() * std);
            if data.len() < rows * cols {
                data.push(mag * (2.0 * std::f32::consts::PI * u2).sin() * std);
            }
        }
        Tensor { rows, cols, data }
    }

    /// Builds a tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or the input is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Tensor {
        assert!(!rows.is_empty(), "empty tensor");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self @ other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul dims");
        let mut out = Tensor::zeros(self.rows, other.cols);
        // i-k-j loop order for cache-friendly row-major access.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let crow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (c, o) in crow.iter_mut().zip(orow) {
                    *c += a * o;
                }
            }
        }
        out
    }

    /// Matrix product `self @ other^T`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_nt dims");
        let mut out = Tensor::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                let mut acc = 0.0;
                for (x, y) in arow.iter().zip(brow) {
                    acc += x * y;
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Matrix product `self^T @ other`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "matmul_tn dims");
        let mut out = Tensor::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let arow = self.row(k);
            let brow = other.row(k);
            for (i, a) in arow.iter().enumerate() {
                if *a == 0.0 {
                    continue;
                }
                let crow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (c, b) in crow.iter_mut().zip(brow) {
                    *c += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "add shape");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scale.
    pub fn scale_assign(&mut self, c: f32) {
        for a in &mut self.data {
            *a *= c;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_reference() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transposed()));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(a.matmul_tn(&b), a.transposed().matmul(&b));
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        use rand::SeedableRng;
        let mut r1 = rand::rngs::StdRng::seed_from_u64(7);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(7);
        assert_eq!(Tensor::randn(3, 3, 1.0, &mut r1), Tensor::randn(3, 3, 1.0, &mut r2));
    }

    #[test]
    fn randn_scale_tracks_std() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let t = Tensor::randn(64, 64, 0.5, &mut rng);
        let var: f32 = t.data().iter().map(|x| x * x).sum::<f32>() / t.len() as f32;
        assert!((var.sqrt() - 0.5).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    #[should_panic(expected = "matmul dims")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
