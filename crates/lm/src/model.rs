//! Decoder-only transformer (mini-GPT-2) over machine-code tokens.
//!
//! The paper fine-tunes a GPT-2-family model; at reproduction scale a
//! 2-layer, 64-dim decoder trained on-CPU captures the same pipeline. The
//! model carries a scalar value head used by the PPO phases (paper
//! §III-B.2/3) and ties its output embedding to `wte` like GPT-2.
//!
//! # Sampling paths
//!
//! [`Gpt::generate`] is the naive reference sampler: every token re-runs
//! a full `O(T)`-row forward through the autodiff tape, so sampling a
//! sequence costs `O(T²)` rows (plus tape bookkeeping). It is kept
//! deliberately un-optimised as the equality baseline.
//!
//! [`Gpt::generate_into`] is the production path: a tape-free incremental
//! decoder over a reusable [`KvCache`] arena. Each step computes only the
//! new token's row, attending over the cached per-layer K/V rows —
//! `O(T)` work per token instead of `O(T²)`. Its arithmetic mirrors the
//! tape ops row for row (same accumulation order, same skip-on-zero
//! matmul, same layer-norm epsilon, shared GELU scalar and
//! [`sample_row`]), so given the same RNG it emits **token-identical**
//! output to `generate` — a pinned invariant (`tests/tests/it_lm.rs`).
//! [`Gpt::generate_batch_into`] amortises the arena and output buffers
//! over many sequences.

use chatfuzz_autograd::{gelu_scalar, Tape, Tensor, Value};
use rand::Rng;

use crate::tokenizer::EOS;

/// Transformer hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GptConfig {
    /// Vocabulary size (from the tokenizer).
    pub vocab: usize,
    /// Model width.
    pub d_model: usize,
    /// Number of transformer blocks.
    pub n_layer: usize,
    /// Attention heads (`d_model % n_head == 0`).
    pub n_head: usize,
    /// Feed-forward inner width.
    pub d_ff: usize,
    /// Maximum sequence length (positional-table size).
    pub max_seq: usize,
}

impl GptConfig {
    /// The small configuration used throughout the experiments.
    pub fn small(vocab: usize) -> GptConfig {
        GptConfig { vocab, d_model: 64, n_layer: 2, n_head: 4, d_ff: 128, max_seq: 96 }
    }

    /// A tiny configuration for fast unit tests.
    pub fn tiny(vocab: usize) -> GptConfig {
        GptConfig { vocab, d_model: 16, n_layer: 1, n_head: 2, d_ff: 32, max_seq: 64 }
    }

    /// A compact configuration that still learns byte-position structure:
    /// used by the quick experiment scale.
    pub fn compact(vocab: usize) -> GptConfig {
        GptConfig { vocab, d_model: 32, n_layer: 2, n_head: 2, d_ff: 64, max_seq: 80 }
    }
}

#[derive(Debug, Clone)]
struct Block {
    ln1_g: Tensor,
    ln1_b: Tensor,
    wq: Tensor,
    wk: Tensor,
    wv: Tensor,
    wo: Tensor,
    ln2_g: Tensor,
    ln2_b: Tensor,
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
    b2: Tensor,
}

/// The model: owned parameter tensors.
#[derive(Debug, Clone)]
pub struct Gpt {
    cfg: GptConfig,
    wte: Tensor,
    wpe: Tensor,
    blocks: Vec<Block>,
    lnf_g: Tensor,
    lnf_b: Tensor,
    vhead_w: Tensor,
    vhead_b: Tensor,
}

/// One forward pass's graph handles.
#[derive(Debug)]
pub struct Forward {
    /// Next-token logits `[T, vocab]`.
    pub logits: Value,
    /// Value-head estimates `[T, 1]` (PPO critic).
    pub values: Value,
    /// Parameter nodes in [`Gpt::param_count`] order, for gradient readout.
    pub params: Vec<Value>,
}

impl Gpt {
    /// Initialises a model with small Gaussian weights.
    pub fn new<R: Rng>(cfg: GptConfig, rng: &mut R) -> Gpt {
        assert!(cfg.d_model.is_multiple_of(cfg.n_head), "d_model must divide into heads");
        let std = 0.08;
        let block = |rng: &mut R| Block {
            ln1_g: Tensor::full(1, cfg.d_model, 1.0),
            ln1_b: Tensor::zeros(1, cfg.d_model),
            wq: Tensor::randn(cfg.d_model, cfg.d_model, std, rng),
            wk: Tensor::randn(cfg.d_model, cfg.d_model, std, rng),
            wv: Tensor::randn(cfg.d_model, cfg.d_model, std, rng),
            wo: Tensor::randn(cfg.d_model, cfg.d_model, std, rng),
            ln2_g: Tensor::full(1, cfg.d_model, 1.0),
            ln2_b: Tensor::zeros(1, cfg.d_model),
            w1: Tensor::randn(cfg.d_model, cfg.d_ff, std, rng),
            b1: Tensor::zeros(1, cfg.d_ff),
            w2: Tensor::randn(cfg.d_ff, cfg.d_model, std, rng),
            b2: Tensor::zeros(1, cfg.d_model),
        };
        Gpt {
            cfg,
            wte: Tensor::randn(cfg.vocab, cfg.d_model, std, rng),
            wpe: Tensor::randn(cfg.max_seq, cfg.d_model, std, rng),
            blocks: (0..cfg.n_layer).map(|_| block(rng)).collect(),
            lnf_g: Tensor::full(1, cfg.d_model, 1.0),
            lnf_b: Tensor::zeros(1, cfg.d_model),
            vhead_w: Tensor::randn(cfg.d_model, 1, std, rng),
            vhead_b: Tensor::zeros(1, 1),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GptConfig {
        &self.cfg
    }

    /// Number of parameter tensors (not scalars).
    pub fn param_count(&self) -> usize {
        4 + 12 * self.blocks.len() + 2
    }

    /// Total scalar parameter count.
    pub fn scalar_params(&self) -> usize {
        self.params().iter().map(|t| t.len()).sum()
    }

    /// Parameter tensors in canonical order.
    pub fn params(&self) -> Vec<&Tensor> {
        let mut v: Vec<&Tensor> = vec![&self.wte, &self.wpe];
        for b in &self.blocks {
            v.extend([
                &b.ln1_g, &b.ln1_b, &b.wq, &b.wk, &b.wv, &b.wo, &b.ln2_g, &b.ln2_b, &b.w1, &b.b1,
                &b.w2, &b.b2,
            ]);
        }
        v.extend([&self.lnf_g, &self.lnf_b, &self.vhead_w, &self.vhead_b]);
        v
    }

    /// Mutable parameter tensors in the same canonical order.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        let mut v: Vec<&mut Tensor> = vec![&mut self.wte, &mut self.wpe];
        for b in &mut self.blocks {
            v.extend([
                &mut b.ln1_g,
                &mut b.ln1_b,
                &mut b.wq,
                &mut b.wk,
                &mut b.wv,
                &mut b.wo,
                &mut b.ln2_g,
                &mut b.ln2_b,
                &mut b.w1,
                &mut b.b1,
                &mut b.w2,
                &mut b.b2,
            ]);
        }
        v.extend([&mut self.lnf_g, &mut self.lnf_b, &mut self.vhead_w, &mut self.vhead_b]);
        v
    }

    /// Builds the forward graph for a token sequence.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty, longer than `max_seq`, or contains ids
    /// outside the vocabulary.
    pub fn forward(&self, tape: &mut Tape, tokens: &[u32]) -> Forward {
        assert!(!tokens.is_empty(), "empty sequence");
        assert!(tokens.len() <= self.cfg.max_seq, "sequence too long");
        let ids: Vec<usize> = tokens
            .iter()
            .map(|&t| {
                assert!((t as usize) < self.cfg.vocab, "token {t} out of vocab");
                t as usize
            })
            .collect();
        let positions: Vec<usize> = (0..ids.len()).collect();
        let hd = self.cfg.d_model / self.cfg.n_head;

        let mut params = Vec::with_capacity(self.param_count());
        let mut reg = |tape: &mut Tape, t: &Tensor| {
            let v = tape.param(t.clone());
            params.push(v);
            v
        };

        let wte = reg(tape, &self.wte);
        let wpe = reg(tape, &self.wpe);
        let tok_emb = tape.gather_rows(wte, &ids);
        let pos_emb = tape.gather_rows(wpe, &positions);
        let mut x = tape.add(tok_emb, pos_emb);

        for b in &self.blocks {
            let ln1_g = reg(tape, &b.ln1_g);
            let ln1_b = reg(tape, &b.ln1_b);
            let wq = reg(tape, &b.wq);
            let wk = reg(tape, &b.wk);
            let wv = reg(tape, &b.wv);
            let wo = reg(tape, &b.wo);
            let ln2_g = reg(tape, &b.ln2_g);
            let ln2_b = reg(tape, &b.ln2_b);
            let w1 = reg(tape, &b.w1);
            let b1 = reg(tape, &b.b1);
            let w2 = reg(tape, &b.w2);
            let b2 = reg(tape, &b.b2);

            let h = tape.layer_norm(x, ln1_g, ln1_b);
            let q = tape.matmul(h, wq);
            let k = tape.matmul(h, wk);
            let v = tape.matmul(h, wv);
            let mut heads = Vec::with_capacity(self.cfg.n_head);
            for head in 0..self.cfg.n_head {
                let qh = tape.slice_cols(q, head * hd, hd);
                let kh = tape.slice_cols(k, head * hd, hd);
                let vh = tape.slice_cols(v, head * hd, hd);
                let scores = tape.matmul_nt(qh, kh);
                let scaled = tape.scale(scores, 1.0 / (hd as f32).sqrt());
                let att = tape.causal_softmax(scaled);
                heads.push(tape.matmul(att, vh));
            }
            let ctx = tape.concat_cols(&heads);
            let proj = tape.matmul(ctx, wo);
            x = tape.add(x, proj);

            let h2 = tape.layer_norm(x, ln2_g, ln2_b);
            let a1 = tape.matmul(h2, w1);
            let a1b = tape.add_row(a1, b1);
            let act = tape.gelu(a1b);
            let a2 = tape.matmul(act, w2);
            let a2b = tape.add_row(a2, b2);
            x = tape.add(x, a2b);
        }

        let lnf_g = reg(tape, &self.lnf_g);
        let lnf_b = reg(tape, &self.lnf_b);
        let vhead_w = reg(tape, &self.vhead_w);
        let vhead_b = reg(tape, &self.vhead_b);
        let hfinal = tape.layer_norm(x, lnf_g, lnf_b);
        let logits = tape.matmul_nt(hfinal, wte); // weight tying
        let vraw = tape.matmul(hfinal, vhead_w);
        let values = tape.add_row(vraw, vhead_b);
        Forward { logits, values, params }
    }

    /// Builds `forward` + cross-entropy next-token loss for one sequence.
    pub fn lm_loss(&self, tape: &mut Tape, tokens: &[u32]) -> (Value, Forward) {
        assert!(tokens.len() >= 2, "need at least two tokens for LM loss");
        let fwd = self.forward(tape, &tokens[..tokens.len() - 1]);
        let targets: Vec<usize> = tokens[1..].iter().map(|&t| t as usize).collect();
        let loss = tape.cross_entropy(fwd.logits, &targets);
        (loss, fwd)
    }

    /// Samples a continuation of `prompt` (temperature + top-k).
    ///
    /// Stops at `EOS` or after `max_new` tokens. The prompt is truncated
    /// from the left to fit the context window.
    pub fn generate<R: Rng>(
        &self,
        prompt: &[u32],
        max_new: usize,
        temperature: f32,
        top_k: usize,
        rng: &mut R,
    ) -> Vec<u32> {
        let mut tokens: Vec<u32> = prompt.to_vec();
        if tokens.is_empty() {
            tokens.push(crate::tokenizer::BOS);
        }
        for _ in 0..max_new {
            let start = tokens.len().saturating_sub(self.cfg.max_seq);
            let window = &tokens[start..];
            let mut tape = Tape::new();
            let fwd = self.forward(&mut tape, window);
            let logits = tape.value(fwd.logits);
            let last = logits.row(logits.rows() - 1);
            let next = sample_row(last, temperature, top_k, rng);
            tokens.push(next);
            if next == EOS {
                break;
            }
        }
        tokens
    }

    /// KV-cached sampling into a caller-owned buffer: token-identical to
    /// [`Gpt::generate`] under the same RNG, but each step runs only the
    /// new token's row against the cached keys/values instead of
    /// re-running the whole window (see the module docs). `out` receives
    /// prompt + continuation; the cache is reset on entry and reusable
    /// across calls, models permitting ([`KvCache::new`] shape).
    ///
    /// While the sequence still fits the context window only new rows
    /// run; once it exceeds `max_seq` the window slides and the cache is
    /// rebuilt per step (the naive path re-runs the window there too, so
    /// the speedup degrades gracefully to parity, never below).
    ///
    /// # Panics
    ///
    /// Panics if the cache was allocated for a different configuration or
    /// a token is outside the vocabulary.
    #[allow(clippy::too_many_arguments)] // mirrors `generate` + (cache, out)
    pub fn generate_into<R: Rng>(
        &self,
        prompt: &[u32],
        max_new: usize,
        temperature: f32,
        top_k: usize,
        rng: &mut R,
        cache: &mut KvCache,
        out: &mut Vec<u32>,
    ) {
        assert_eq!(cache.cfg, self.cfg, "KV cache was allocated for a different model shape");
        out.clear();
        out.extend_from_slice(prompt);
        if out.is_empty() {
            out.push(crate::tokenizer::BOS);
        }
        cache.reset();
        let mut window_start = 0usize;
        for _ in 0..max_new {
            let start = out.len().saturating_sub(self.cfg.max_seq);
            if start != window_start {
                // The window slid: cached rows were computed under other
                // position embeddings — rebuild from the new start.
                cache.reset();
                window_start = start;
            }
            // Feed every not-yet-cached row of the current window; the
            // last row's logits drive the sample. On the first iteration
            // this is the whole prompt (prefill), afterwards just the
            // freshly appended token.
            for &token in &out[window_start + cache.len..] {
                self.decode_step(cache, token);
            }
            let next = sample_row(&cache.logits, temperature, top_k, rng);
            out.push(next);
            if next == EOS {
                break;
            }
        }
    }

    /// Samples one continuation per prompt through a single shared
    /// [`KvCache`] arena, recycling the per-sequence output buffers in
    /// `outs`. Sequences are sampled in order from the shared RNG, so the
    /// result equals calling [`Gpt::generate_into`] per prompt — and
    /// therefore [`Gpt::generate`] — back to back.
    #[allow(clippy::too_many_arguments)] // mirrors `generate` + (cache, outs)
    pub fn generate_batch_into<R: Rng>(
        &self,
        prompts: &[Vec<u32>],
        max_new: usize,
        temperature: f32,
        top_k: usize,
        rng: &mut R,
        cache: &mut KvCache,
        outs: &mut Vec<Vec<u32>>,
    ) {
        outs.resize_with(prompts.len(), Vec::new);
        for (prompt, out) in prompts.iter().zip(outs.iter_mut()) {
            self.generate_into(prompt, max_new, temperature, top_k, rng, cache, out);
        }
    }

    /// Appends one token to the cache (position `cache.len()`) and leaves
    /// the next-token logits in `cache.logits`. The arithmetic mirrors
    /// [`Gpt::forward`]'s tape ops row for row — see the module docs for
    /// why that makes the two paths token-identical.
    ///
    /// # Panics
    ///
    /// Panics if the cache is full (`max_seq` rows) or `token` is out of
    /// vocabulary.
    pub fn decode_step(&self, cache: &mut KvCache, token: u32) {
        assert_eq!(cache.cfg, self.cfg, "KV cache was allocated for a different model shape");
        assert!(cache.len < self.cfg.max_seq, "KV cache is full (window must slide)");
        assert!((token as usize) < self.cfg.vocab, "token {token} out of vocab");
        let pos = cache.len;
        let d = self.cfg.d_model;
        let hd = d / self.cfg.n_head;
        let scale = 1.0 / (hd as f32).sqrt();

        // x = wte[token] + wpe[pos] (same add order as the tape).
        let tok_row = self.wte.row(token as usize);
        let pos_row = self.wpe.row(pos);
        for (x, (t, p)) in cache.x.iter_mut().zip(tok_row.iter().zip(pos_row)) {
            *x = t + p;
        }

        for (layer, b) in self.blocks.iter().enumerate() {
            // Attention half: norm, project the new row's q/k/v, cache
            // k/v, attend over everything cached so far.
            layer_norm_row(&cache.x, &b.ln1_g, &b.ln1_b, &mut cache.h);
            row_matmul(&cache.h, &b.wq, &mut cache.qrow);
            let k_row = &mut cache.k[layer][pos * d..(pos + 1) * d];
            row_matmul_into(&cache.h, &b.wk, k_row);
            let v_row = &mut cache.v[layer][pos * d..(pos + 1) * d];
            row_matmul_into(&cache.h, &b.wv, v_row);

            for head in 0..self.cfg.n_head {
                let hs = head * hd;
                // Scores against every cached key row (the causal row
                // `pos` of the full score matrix), then the same
                // max/exp/denominator softmax the tape applies.
                let qh = &cache.qrow[hs..hs + hd];
                for j in 0..=pos {
                    let kh = &cache.k[layer][j * d + hs..j * d + hs + hd];
                    let mut acc = 0.0;
                    for (x, y) in qh.iter().zip(kh) {
                        acc += x * y;
                    }
                    cache.att[j] = acc * scale;
                }
                let max = cache.att[..=pos].iter().cloned().fold(f32::MIN, f32::max);
                let mut denom = 0.0;
                for j in 0..=pos {
                    denom += (cache.att[j] - max).exp();
                }
                for j in 0..=pos {
                    cache.att[j] = (cache.att[j] - max).exp() / denom;
                }
                // ctx_head = att · V (k ascending, skip-on-zero like the
                // tape's matmul).
                let ctx_head = &mut cache.ctx[hs..hs + hd];
                ctx_head.fill(0.0);
                for j in 0..=pos {
                    let a = cache.att[j];
                    if a == 0.0 {
                        continue;
                    }
                    let vh = &cache.v[layer][j * d + hs..j * d + hs + hd];
                    for (c, y) in ctx_head.iter_mut().zip(vh) {
                        *c += a * y;
                    }
                }
            }
            row_matmul(&cache.ctx, &b.wo, &mut cache.h);
            for (x, p) in cache.x.iter_mut().zip(&cache.h) {
                *x += p;
            }

            // Feed-forward half.
            layer_norm_row(&cache.x, &b.ln2_g, &b.ln2_b, &mut cache.h);
            row_matmul(&cache.h, &b.w1, &mut cache.ff);
            for (a, bias) in cache.ff.iter_mut().zip(b.b1.row(0)) {
                *a = gelu_scalar(*a + bias);
            }
            row_matmul(&cache.ff, &b.w2, &mut cache.h);
            for ((x, a), bias) in cache.x.iter_mut().zip(&cache.h).zip(b.b2.row(0)) {
                *x += a + bias;
            }
        }

        // Final norm + weight-tied logits (matmul_nt row: plain ascending
        // dot against every embedding row).
        layer_norm_row(&cache.x, &self.lnf_g, &self.lnf_b, &mut cache.h);
        for (j, l) in cache.logits.iter_mut().enumerate() {
            let wrow = self.wte.row(j);
            let mut acc = 0.0;
            for (x, y) in cache.h.iter().zip(wrow) {
                acc += x * y;
            }
            *l = acc;
        }
        cache.len += 1;
    }
}

/// Reusable arena for [`Gpt::generate_into`]: per-layer key/value rows of
/// the current window plus every scratch row the incremental decoder
/// needs. Allocate once per model shape, reuse across sequences — steady
/// state sampling is then allocation-free.
#[derive(Debug)]
pub struct KvCache {
    cfg: GptConfig,
    /// Cached rows (tokens fed so far within the current window).
    len: usize,
    /// Per layer: cached key rows, `max_seq × d_model` row-major.
    k: Vec<Vec<f32>>,
    /// Per layer: cached value rows.
    v: Vec<Vec<f32>>,
    // Scratch rows, reused every step.
    x: Vec<f32>,
    h: Vec<f32>,
    qrow: Vec<f32>,
    ctx: Vec<f32>,
    ff: Vec<f32>,
    att: Vec<f32>,
    /// Next-token logits of the last [`Gpt::decode_step`].
    logits: Vec<f32>,
}

impl KvCache {
    /// Allocates an arena for models of configuration `cfg`.
    pub fn new(cfg: GptConfig) -> KvCache {
        KvCache {
            cfg,
            len: 0,
            k: (0..cfg.n_layer).map(|_| vec![0.0; cfg.max_seq * cfg.d_model]).collect(),
            v: (0..cfg.n_layer).map(|_| vec![0.0; cfg.max_seq * cfg.d_model]).collect(),
            x: vec![0.0; cfg.d_model],
            h: vec![0.0; cfg.d_model.max(cfg.d_ff)],
            qrow: vec![0.0; cfg.d_model],
            ctx: vec![0.0; cfg.d_model],
            ff: vec![0.0; cfg.d_ff],
            att: vec![0.0; cfg.max_seq],
            logits: vec![0.0; cfg.vocab],
        }
    }

    /// Number of cached rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no rows are cached yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Discards the cached rows (keeps the allocations).
    pub fn reset(&mut self) {
        self.len = 0;
    }

    /// The next-token logits left by the last [`Gpt::decode_step`].
    pub fn logits(&self) -> &[f32] {
        &self.logits
    }
}

/// One row of `Tensor::matmul`: `out[j] = Σ_k row[k]·w[k][j]`, `k`
/// ascending with the batched product's skip-on-zero, so the accumulation
/// is bit-identical to the tape's full-matrix forward.
fn row_matmul(row: &[f32], w: &Tensor, out: &mut Vec<f32>) {
    out.resize(w.cols(), 0.0);
    row_matmul_into(row, w, out);
}

fn row_matmul_into(row: &[f32], w: &Tensor, out: &mut [f32]) {
    assert_eq!(row.len(), w.rows(), "row_matmul dims");
    assert_eq!(out.len(), w.cols(), "row_matmul out dims");
    out.fill(0.0);
    for (k, &a) in row.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        for (o, &b) in out.iter_mut().zip(w.row(k)) {
            *o += a * b;
        }
    }
}

/// One row of the tape's layer norm: same mean/variance summation order,
/// same `1e-5` epsilon, same `xhat·gain + bias` form.
fn layer_norm_row(row: &[f32], gain: &Tensor, bias: &Tensor, out: &mut Vec<f32>) {
    const EPS: f32 = 1e-5;
    let n = row.len();
    out.resize(n, 0.0);
    let mean = row.iter().sum::<f32>() / n as f32;
    let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
    let rstd = 1.0 / (var + EPS).sqrt();
    for c in 0..n {
        out[c] = (row[c] - mean) * rstd * gain.get(0, c) + bias.get(0, c);
    }
}

/// Temperature + top-k sampling from a logit row.
pub fn sample_row<R: Rng>(logits: &[f32], temperature: f32, top_k: usize, rng: &mut R) -> u32 {
    let temp = temperature.max(1e-4);
    let mut indexed: Vec<(usize, f32)> =
        logits.iter().enumerate().map(|(i, &l)| (i, l / temp)).collect();
    indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let k = top_k.clamp(1, indexed.len());
    let shortlist = &indexed[..k];
    let max = shortlist[0].1;
    let weights: Vec<f32> = shortlist.iter().map(|(_, l)| (l - max).exp()).collect();
    let total: f32 = weights.iter().sum();
    let mut draw = rng.gen_range(0.0..total.max(f32::MIN_POSITIVE));
    for ((idx, _), w) in shortlist.iter().zip(&weights) {
        if draw < *w {
            return *idx as u32;
        }
        draw -= w;
    }
    shortlist[k - 1].0 as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn forward_shapes() {
        let model = Gpt::new(GptConfig::tiny(24), &mut rng());
        let mut tape = Tape::new();
        let fwd = model.forward(&mut tape, &[1, 5, 9, 2]);
        assert_eq!(tape.value(fwd.logits).rows(), 4);
        assert_eq!(tape.value(fwd.logits).cols(), 24);
        assert_eq!(tape.value(fwd.values).rows(), 4);
        assert_eq!(tape.value(fwd.values).cols(), 1);
        assert_eq!(fwd.params.len(), model.param_count());
    }

    #[test]
    fn loss_decreases_under_training_steps() {
        use chatfuzz_autograd::{Adam, AdamConfig};
        let mut r = rng();
        let mut model = Gpt::new(GptConfig::tiny(12), &mut r);
        let seq: Vec<u32> = vec![1, 4, 5, 4, 5, 4, 5, 2];
        let mut adam = Adam::new(AdamConfig { lr: 3e-3, ..Default::default() });
        let loss_at = |model: &Gpt| {
            let mut tape = Tape::new();
            let (loss, _) = model.lm_loss(&mut tape, &seq);
            tape.value(loss).get(0, 0)
        };
        let initial = loss_at(&model);
        for _ in 0..60 {
            let mut tape = Tape::new();
            let (loss, fwd) = model.lm_loss(&mut tape, &seq);
            tape.backward(loss);
            let grads: Vec<_> = fwd
                .params
                .iter()
                .map(|p| {
                    tape.grad(*p).cloned().unwrap_or_else(|| {
                        let t = tape.value(*p);
                        chatfuzz_autograd::Tensor::zeros(t.rows(), t.cols())
                    })
                })
                .collect();
            let mut params = model.params_mut();
            adam.step(&mut params, &grads);
        }
        let trained = loss_at(&model);
        assert!(trained < initial * 0.5, "loss should halve: {initial} -> {trained}");
    }

    #[test]
    fn generation_is_bounded_and_in_vocab() {
        let model = Gpt::new(GptConfig::tiny(20), &mut rng());
        let out = model.generate(&[1], 16, 1.0, 8, &mut rng());
        assert!(out.len() <= 17);
        assert!(out.iter().all(|&t| t < 20));
    }

    /// The KV-cached sampler is token-identical to the naive path under
    /// the same RNG — across temperatures, top-k settings, and prompts
    /// long enough to slide the context window (the full sweep lives in
    /// `tests/tests/it_lm.rs`).
    #[test]
    fn cached_generation_matches_naive_token_for_token() {
        let model = Gpt::new(GptConfig::tiny(20), &mut rng());
        let mut cache = KvCache::new(*model.config());
        let mut out = Vec::new();
        for (prompt_len, max_new, temp, top_k) in
            [(1usize, 16usize, 1.0f32, 8usize), (5, 32, 0.7, 3), (60, 16, 1.3, 20), (0, 8, 0.2, 1)]
        {
            let prompt: Vec<u32> = (0..prompt_len as u32).map(|i| i % 20).collect();
            let naive = model.generate(&prompt, max_new, temp, top_k, &mut rng());
            model.generate_into(&prompt, max_new, temp, top_k, &mut rng(), &mut cache, &mut out);
            assert_eq!(out, naive, "prompt_len={prompt_len} max_new={max_new} temp={temp}");
        }
    }

    #[test]
    fn batch_sampling_equals_sequential_sampling() {
        let model = Gpt::new(GptConfig::tiny(16), &mut rng());
        let prompts: Vec<Vec<u32>> = (0..4).map(|i| vec![1, 3 + i]).collect();
        let mut cache = KvCache::new(*model.config());
        let mut outs = Vec::new();
        model.generate_batch_into(&prompts, 12, 0.9, 6, &mut rng(), &mut cache, &mut outs);
        let mut reference_rng = rng();
        for (prompt, out) in prompts.iter().zip(&outs) {
            let naive = model.generate(prompt, 12, 0.9, 6, &mut reference_rng);
            assert_eq!(out, &naive);
        }
    }

    #[test]
    #[should_panic(expected = "different model shape")]
    fn cache_rejects_mismatched_model() {
        let model = Gpt::new(GptConfig::tiny(16), &mut rng());
        let mut cache = KvCache::new(GptConfig::tiny(24));
        model.decode_step(&mut cache, 1);
    }

    #[test]
    fn sampling_respects_top_1() {
        let logits = [0.0f32, 5.0, 1.0];
        for _ in 0..8 {
            assert_eq!(sample_row(&logits, 1.0, 1, &mut rng()), 1);
        }
    }

    #[test]
    #[should_panic(expected = "sequence too long")]
    fn overlong_sequences_rejected() {
        let model = Gpt::new(GptConfig::tiny(8), &mut rng());
        let seq: Vec<u32> = (0..100).map(|i| i % 8).collect();
        let mut tape = Tape::new();
        model.forward(&mut tape, &seq);
    }
}
