//! Unsupervised LM training (paper's "Initial Training" step).

use chatfuzz_autograd::{Adam, AdamConfig, Tape, Tensor};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::model::Gpt;

/// LM-training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Optimisation steps.
    pub steps: usize,
    /// Sequences per step (gradient accumulation).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { steps: 200, batch_size: 8, lr: 1e-3 }
    }
}

/// Per-step training telemetry.
#[derive(Debug, Clone, Copy)]
pub struct TrainStep {
    /// Step index.
    pub step: usize,
    /// Mean batch cross-entropy.
    pub loss: f32,
    /// Pre-clip global gradient norm.
    pub grad_norm: f32,
}

/// Trains the model on tokenised sequences; returns the loss curve.
///
/// Sequences shorter than 2 tokens are skipped; longer ones are truncated
/// to the model's context window.
///
/// # Panics
///
/// Panics if `data` contains no usable sequence.
pub fn train_lm<R: Rng>(
    model: &mut Gpt,
    data: &[Vec<u32>],
    cfg: TrainConfig,
    rng: &mut R,
) -> Vec<TrainStep> {
    let usable: Vec<&Vec<u32>> = data.iter().filter(|s| s.len() >= 2).collect();
    assert!(!usable.is_empty(), "no trainable sequences");
    let mut adam = Adam::new(AdamConfig { lr: cfg.lr, ..Default::default() });
    let mut curve = Vec::with_capacity(cfg.steps);
    let max_seq = model.config().max_seq;
    for step in 0..cfg.steps {
        let mut batch_grads: Option<Vec<Tensor>> = None;
        let mut batch_loss = 0.0;
        for _ in 0..cfg.batch_size {
            let seq = usable.choose(rng).expect("non-empty");
            let seq = &seq[..seq.len().min(max_seq)];
            if seq.len() < 2 {
                continue;
            }
            let mut tape = Tape::new();
            let (loss, fwd) = model.lm_loss(&mut tape, seq);
            tape.backward(loss);
            batch_loss += tape.value(loss).get(0, 0);
            let grads: Vec<Tensor> = fwd
                .params
                .iter()
                .map(|p| {
                    tape.grad(*p).cloned().unwrap_or_else(|| {
                        let t = tape.value(*p);
                        Tensor::zeros(t.rows(), t.cols())
                    })
                })
                .collect();
            match &mut batch_grads {
                Some(acc) => {
                    for (a, g) in acc.iter_mut().zip(&grads) {
                        a.add_assign(g);
                    }
                }
                None => batch_grads = Some(grads),
            }
        }
        let mut grads = batch_grads.expect("batch produced gradients");
        let scale = 1.0 / cfg.batch_size as f32;
        for g in &mut grads {
            g.scale_assign(scale);
        }
        let mut params = model.params_mut();
        let grad_norm = adam.step(&mut params, &grads);
        curve.push(TrainStep { step, loss: batch_loss / cfg.batch_size as f32, grad_norm });
    }
    curve
}

/// Mean cross-entropy of the model over a held-out set (no training).
pub fn evaluate_lm(model: &Gpt, data: &[Vec<u32>]) -> f32 {
    let max_seq = model.config().max_seq;
    let mut total = 0.0;
    let mut n = 0usize;
    for seq in data.iter().filter(|s| s.len() >= 2) {
        let seq = &seq[..seq.len().min(max_seq)];
        let mut tape = Tape::new();
        let (loss, _) = model.lm_loss(&mut tape, seq);
        total += tape.value(loss).get(0, 0);
        n += 1;
    }
    if n == 0 {
        f32::NAN
    } else {
        total / n as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GptConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn training_reduces_heldout_loss_on_regular_language() {
        let mut rng = StdRng::seed_from_u64(3);
        // A strongly patterned "language": 1 (4 5 6)* 2.
        let data: Vec<Vec<u32>> = (0..24)
            .map(|i| {
                let mut s = vec![1u32];
                for _ in 0..(3 + i % 4) {
                    s.extend([4u32, 5, 6]);
                }
                s.push(2);
                s
            })
            .collect();
        let mut model = Gpt::new(GptConfig::tiny(8), &mut rng);
        let before = evaluate_lm(&model, &data[..4]);
        let curve = train_lm(
            &mut model,
            &data[4..],
            TrainConfig { steps: 40, batch_size: 4, lr: 3e-3 },
            &mut rng,
        );
        let after = evaluate_lm(&model, &data[..4]);
        assert_eq!(curve.len(), 40);
        assert!(after < before * 0.7, "held-out loss: {before} -> {after}");
    }

    #[test]
    fn evaluate_empty_is_nan() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = Gpt::new(GptConfig::tiny(8), &mut rng);
        assert!(evaluate_lm(&model, &[]).is_nan());
    }

    #[test]
    #[should_panic(expected = "no trainable sequences")]
    fn training_requires_data() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = Gpt::new(GptConfig::tiny(8), &mut rng);
        train_lm(&mut model, &[vec![1]], TrainConfig::default(), &mut rng);
    }
}
