//! Machine-language tokenizer (paper §III-B.1 / §IV-C.1).
//!
//! The paper "trains a tokenizer on the full ISA" and feeds hex machine
//! code (e.g. `4118,419c,…`) to a GPT-2-style model. We reproduce that
//! with a byte-pair-encoding tokenizer over the **hex nibbles** of each
//! 32-bit instruction word:
//!
//! * base alphabet: the 16 nibbles + `BOS`/`EOS`/`SEP`/`PAD` specials;
//! * merges are learned from a corpus and never cross an instruction
//!   boundary (the `SEP` token separates instructions);
//! * decoding maps token sequences back to instruction words; slots whose
//!   nibble count is not exactly 8 are *malformed* — the disassembler
//!   reward of the cleanup-RL phase penalises exactly these.

use std::collections::HashMap;

/// Padding token id.
pub const PAD: u32 = 0;
/// Begin-of-sequence token id.
pub const BOS: u32 = 1;
/// End-of-sequence token id.
pub const EOS: u32 = 2;
/// Instruction-separator token id.
pub const SEP: u32 = 3;
/// First nibble token id (`0x0`); nibble `n` is `NIBBLE0 + n`.
pub const NIBBLE0: u32 = 4;
/// Number of reserved (non-learned) tokens.
pub const BASE_VOCAB: u32 = NIBBLE0 + 16;

/// Token-stream framing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenizerKind {
    /// Learned BPE over nibbles with `SEP`-delimited instructions.
    /// Compact, but the model must learn to emit exactly 8 nibbles of
    /// expansion per slot — slot malformation is possible.
    Bpe,
    /// Fixed-width byte parcels: every instruction is exactly 4 tokens
    /// (big-endian bytes), mirroring the paper's fixed hex-parcel stream
    /// (`4118,419c,…`). Slot framing is positional, so generated streams
    /// are malformed only at a truncated tail.
    FixedByte,
}

/// A machine-code tokenizer (learned BPE or fixed byte parcels).
///
/// # Examples
///
/// ```
/// use chatfuzz_lm::tokenizer::Tokenizer;
///
/// let corpus = vec![vec![0x0010_0093u32, 0x0000_0533], vec![0x0010_0093]];
/// let tok = Tokenizer::train(&corpus, 64);
/// let ids = tok.encode(&[0x0010_0093]);
/// let back = tok.decode(&ids);
/// assert_eq!(back, vec![Some(0x0010_0093)]);
///
/// let fixed = Tokenizer::fixed_byte();
/// let ids = fixed.encode(&[0xdead_beef]);
/// assert_eq!(fixed.decode(&ids), vec![Some(0xdead_beef)]);
/// ```
#[derive(Debug, Clone)]
pub struct Tokenizer {
    kind: TokenizerKind,
    /// Learned merges in application order: `(left, right) -> new_id`.
    merges: Vec<(u32, u32)>,
    merge_map: HashMap<(u32, u32), u32>,
    /// Expansion of every token to its nibble string.
    expansions: Vec<Vec<u8>>,
}

impl Tokenizer {
    /// Trains BPE merges on a corpus of instruction-word sequences until
    /// the vocabulary reaches `vocab_size` (or no pair repeats).
    pub fn train(corpus: &[Vec<u32>], vocab_size: u32) -> Tokenizer {
        assert!(vocab_size >= BASE_VOCAB, "vocab must include the base alphabet");
        let mut expansions: Vec<Vec<u8>> = (0..BASE_VOCAB)
            .map(|id| if id >= NIBBLE0 { vec![(id - NIBBLE0) as u8] } else { Vec::new() })
            .collect();
        // Working corpus: one token sequence per *instruction*.
        let mut work: Vec<Vec<u32>> =
            corpus.iter().flat_map(|prog| prog.iter().map(|w| word_nibble_tokens(*w))).collect();
        let mut merges = Vec::new();
        let mut merge_map = HashMap::new();
        while BASE_VOCAB + (merges.len() as u32) < vocab_size {
            let mut counts: HashMap<(u32, u32), u32> = HashMap::new();
            for seq in &work {
                for pair in seq.windows(2) {
                    *counts.entry((pair[0], pair[1])).or_insert(0) += 1;
                }
            }
            // Deterministic tie-break: highest count, then smallest pair.
            let Some((&pair, &count)) =
                counts.iter().max_by_key(|(pair, count)| (**count, std::cmp::Reverse(**pair)))
            else {
                break;
            };
            if count < 2 {
                break;
            }
            let new_id = BASE_VOCAB + merges.len() as u32;
            merges.push(pair);
            merge_map.insert(pair, new_id);
            let mut expansion = expansions[pair.0 as usize].clone();
            expansion.extend_from_slice(&expansions[pair.1 as usize]);
            expansions.push(expansion);
            for seq in &mut work {
                apply_merge(seq, pair, new_id);
            }
        }
        Tokenizer { kind: TokenizerKind::Bpe, merges, merge_map, expansions }
    }

    /// Builds the fixed-width byte-parcel tokenizer: 256 byte tokens after
    /// the specials/nibbles, each expanding to two nibbles; every
    /// instruction encodes as exactly 4 byte tokens (big-endian).
    pub fn fixed_byte() -> Tokenizer {
        let mut expansions: Vec<Vec<u8>> = (0..BASE_VOCAB)
            .map(|id| if id >= NIBBLE0 { vec![(id - NIBBLE0) as u8] } else { Vec::new() })
            .collect();
        let mut merges = Vec::new();
        let mut merge_map = HashMap::new();
        for byte in 0u32..256 {
            let pair = (NIBBLE0 + (byte >> 4), NIBBLE0 + (byte & 0xf));
            let new_id = BASE_VOCAB + merges.len() as u32;
            merges.push(pair);
            merge_map.insert(pair, new_id);
            expansions.push(vec![(byte >> 4) as u8, (byte & 0xf) as u8]);
        }
        Tokenizer { kind: TokenizerKind::FixedByte, merges, merge_map, expansions }
    }

    /// The framing mode of this tokenizer.
    pub fn kind(&self) -> TokenizerKind {
        self.kind
    }

    /// The learned merge pairs in application order — together with
    /// [`Tokenizer::kind`] this is the tokenizer's whole learned state
    /// (see [`Tokenizer::from_parts`]).
    pub fn merges(&self) -> &[(u32, u32)] {
        &self.merges
    }

    /// Rebuilds a tokenizer from its framing kind and merge list — the
    /// deserialisation half of model-state checkpoints. Expansions and
    /// the merge map are reconstructed exactly as training built them, so
    /// `from_parts(t.kind(), t.merges().to_vec())` encodes and decodes
    /// identically to `t`.
    ///
    /// # Panics
    ///
    /// Panics if a merge references a token id not defined yet (corrupt
    /// state).
    pub fn from_parts(kind: TokenizerKind, merges: Vec<(u32, u32)>) -> Tokenizer {
        let mut expansions: Vec<Vec<u8>> = (0..BASE_VOCAB)
            .map(|id| if id >= NIBBLE0 { vec![(id - NIBBLE0) as u8] } else { Vec::new() })
            .collect();
        let mut merge_map = HashMap::new();
        for (i, &(left, right)) in merges.iter().enumerate() {
            let new_id = BASE_VOCAB + i as u32;
            assert!(
                left < new_id && right < new_id,
                "merge ({left},{right}) references an undefined token id"
            );
            merge_map.insert((left, right), new_id);
            let mut expansion = expansions[left as usize].clone();
            expansion.extend_from_slice(&expansions[right as usize]);
            expansions.push(expansion);
        }
        Tokenizer { kind, merges, merge_map, expansions }
    }

    /// Total vocabulary size (base + learned).
    pub fn vocab_size(&self) -> u32 {
        BASE_VOCAB + self.merges.len() as u32
    }

    /// Encodes a program: `BOS instr (SEP instr)* EOS` (BPE) or
    /// `BOS byte* EOS` (fixed-byte framing needs no separators).
    pub fn encode(&self, words: &[u32]) -> Vec<u32> {
        let mut out = vec![BOS];
        for (i, w) in words.iter().enumerate() {
            if i > 0 && self.kind == TokenizerKind::Bpe {
                out.push(SEP);
            }
            out.extend(self.encode_word(*w));
        }
        out.push(EOS);
        out
    }

    /// Encodes a prompt prefix: like [`Tokenizer::encode`] but without the
    /// closing `EOS`, and with a trailing `SEP` in BPE mode so the model
    /// continues at an instruction boundary.
    pub fn encode_prompt(&self, words: &[u32]) -> Vec<u32> {
        let mut out = vec![BOS];
        for w in words {
            out.extend(self.encode_word(*w));
            if self.kind == TokenizerKind::Bpe {
                out.push(SEP);
            }
        }
        out
    }

    /// Encodes one instruction word (no specials).
    pub fn encode_word(&self, word: u32) -> Vec<u32> {
        if self.kind == TokenizerKind::FixedByte {
            return (0..4).rev().map(|i| BASE_VOCAB + ((word >> (i * 8)) & 0xff)).collect();
        }
        let mut seq = word_nibble_tokens(word);
        loop {
            let mut best: Option<(usize, u32)> = None;
            for (i, pair) in seq.windows(2).enumerate() {
                if let Some(&id) = self.merge_map.get(&(pair[0], pair[1])) {
                    // Apply merges in learned order (smallest id first).
                    if best.is_none() || id < best.unwrap().1 {
                        best = Some((i, id));
                    }
                }
            }
            let Some((i, id)) = best else { break };
            seq[i] = id;
            seq.remove(i + 1);
        }
        seq
    }

    /// Decodes a token stream back to instruction slots.
    ///
    /// Specials delimit instructions; any slot that does not expand to
    /// exactly 8 nibbles decodes as `None` (a malformed instruction the
    /// disassembler reward will penalise). Unknown ids also poison a slot.
    pub fn decode(&self, tokens: &[u32]) -> Vec<Option<u32>> {
        if self.kind == TokenizerKind::FixedByte {
            return self.decode_fixed(tokens);
        }
        let mut out = Vec::new();
        let mut nibbles: Vec<u8> = Vec::new();
        let mut poisoned = false;
        let mut saw_any = false;
        let flush = |nibbles: &mut Vec<u8>,
                     poisoned: &mut bool,
                     saw: &mut bool,
                     out: &mut Vec<Option<u32>>| {
            if !*saw {
                return;
            }
            if *poisoned || nibbles.len() != 8 {
                out.push(None);
            } else {
                let mut w = 0u32;
                for n in nibbles.iter() {
                    w = (w << 4) | u32::from(*n);
                }
                out.push(Some(w));
            }
            nibbles.clear();
            *poisoned = false;
            *saw = false;
        };
        for &t in tokens {
            match t {
                PAD => {}
                BOS => {}
                EOS => flush(&mut nibbles, &mut poisoned, &mut saw_any, &mut out),
                SEP => flush(&mut nibbles, &mut poisoned, &mut saw_any, &mut out),
                id if id < self.vocab_size() => {
                    saw_any = true;
                    nibbles.extend_from_slice(&self.expansions[id as usize]);
                }
                _ => {
                    saw_any = true;
                    poisoned = true;
                }
            }
        }
        flush(&mut nibbles, &mut poisoned, &mut saw_any, &mut out);
        out
    }

    /// Positional decoding for the fixed-byte framing: specials are
    /// skipped, every 4 byte tokens form one instruction; a truncated tail
    /// or an out-of-range id yields one malformed slot.
    fn decode_fixed(&self, tokens: &[u32]) -> Vec<Option<u32>> {
        let mut out = Vec::new();
        let mut word: u32 = 0;
        let mut have = 0usize;
        let mut poisoned = false;
        for &t in tokens {
            match t {
                PAD | BOS | EOS | SEP => {}
                id if (BASE_VOCAB..self.vocab_size()).contains(&id) => {
                    word = (word << 8) | (id - BASE_VOCAB);
                    have += 1;
                    if have == 4 {
                        out.push((!poisoned).then_some(word));
                        word = 0;
                        have = 0;
                        poisoned = false;
                    }
                }
                _ => {
                    // Raw nibble tokens or unknown ids poison the slot.
                    word <<= 8;
                    have += 1;
                    poisoned = true;
                    if have == 4 {
                        out.push(None);
                        word = 0;
                        have = 0;
                        poisoned = false;
                    }
                }
            }
        }
        if have > 0 {
            out.push(None);
        }
        out
    }

    /// Decodes into a flat byte image (malformed slots become the
    /// defined-illegal all-zero word so they still occupy an instruction
    /// slot and draw the disassembler penalty).
    pub fn decode_to_bytes(&self, tokens: &[u32]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for slot in self.decode(tokens) {
            bytes.extend_from_slice(&slot.unwrap_or(0).to_le_bytes());
        }
        bytes
    }
}

/// The 8 big-endian hex nibbles of a word, as base tokens.
fn word_nibble_tokens(word: u32) -> Vec<u32> {
    (0..8).rev().map(|i| NIBBLE0 + ((word >> (i * 4)) & 0xf)).collect()
}

fn apply_merge(seq: &mut Vec<u32>, pair: (u32, u32), new_id: u32) {
    let mut i = 0;
    while i + 1 < seq.len() {
        if seq[i] == pair.0 && seq[i + 1] == pair.1 {
            seq[i] = new_id;
            seq.remove(i + 1);
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Vec<u32>> {
        vec![
            vec![0x0010_0093, 0x0000_0533, 0x0010_0093],
            vec![0x0010_0093, 0x0040_00ef],
            vec![0x0000_0533, 0x0010_0093],
        ]
    }

    #[test]
    fn base_alphabet_roundtrips_without_training() {
        let tok = Tokenizer::train(&[], BASE_VOCAB);
        assert_eq!(tok.vocab_size(), BASE_VOCAB);
        let ids = tok.encode(&[0xdead_beef, 0x0000_0013]);
        assert_eq!(tok.decode(&ids), vec![Some(0xdead_beef), Some(0x0000_0013)]);
    }

    #[test]
    fn merges_shrink_encodings() {
        let tok = Tokenizer::train(&corpus(), 96);
        assert!(tok.vocab_size() > BASE_VOCAB, "some merges learned");
        let enc = tok.encode_word(0x0010_0093);
        assert!(enc.len() < 8, "frequent word compresses below 8 nibbles, got {}", enc.len());
        // Round-trip still exact.
        let ids = tok.encode(&[0x0010_0093, 0x0000_0533]);
        assert_eq!(tok.decode(&ids), vec![Some(0x0010_0093), Some(0x0000_0533)]);
    }

    #[test]
    fn unseen_words_still_roundtrip() {
        let tok = Tokenizer::train(&corpus(), 96);
        for w in [0u32, u32::MAX, 0x1234_5678, 0x8000_0000] {
            let ids = tok.encode(&[w]);
            assert_eq!(tok.decode(&ids), vec![Some(w)], "word {w:#x}");
        }
    }

    #[test]
    fn malformed_slots_decode_to_none() {
        let tok = Tokenizer::train(&corpus(), 96);
        // 7 nibbles then SEP: wrong length.
        let mut ids: Vec<u32> = (0..7).map(|_| NIBBLE0).collect();
        ids.push(SEP);
        ids.extend(tok.encode_word(0x0010_0093));
        ids.push(EOS);
        let decoded = tok.decode(&ids);
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0], None);
        assert_eq!(decoded[1], Some(0x0010_0093));
    }

    #[test]
    fn decode_to_bytes_fills_malformed_with_illegal_word() {
        let tok = Tokenizer::train(&[], BASE_VOCAB);
        let ids = vec![NIBBLE0, SEP]; // 1-nibble slot -> malformed
        let bytes = tok.decode_to_bytes(&ids);
        assert_eq!(bytes, 0u32.to_le_bytes());
    }

    #[test]
    fn empty_token_stream_decodes_empty() {
        let tok = Tokenizer::train(&[], BASE_VOCAB);
        assert!(tok.decode(&[BOS, EOS]).is_empty());
        assert!(tok.decode(&[]).is_empty());
    }

    #[test]
    fn training_is_deterministic() {
        let t1 = Tokenizer::train(&corpus(), 128);
        let t2 = Tokenizer::train(&corpus(), 128);
        assert_eq!(t1.merges, t2.merges);
    }

    #[test]
    fn from_parts_rebuilds_an_identical_tokenizer() {
        for tok in [Tokenizer::train(&corpus(), 128), Tokenizer::fixed_byte()] {
            let rebuilt = Tokenizer::from_parts(tok.kind(), tok.merges().to_vec());
            assert_eq!(rebuilt.vocab_size(), tok.vocab_size());
            for w in [0u32, u32::MAX, 0x0010_0093, 0x1234_5678] {
                assert_eq!(rebuilt.encode(&[w]), tok.encode(&[w]), "word {w:#x}");
            }
            let ids = tok.encode(&[0x0010_0093, 0xdead_beef]);
            assert_eq!(rebuilt.decode(&ids), tok.decode(&ids));
        }
    }

    #[test]
    #[should_panic(expected = "undefined token id")]
    fn from_parts_rejects_forward_references() {
        let _ = Tokenizer::from_parts(TokenizerKind::Bpe, vec![(BASE_VOCAB + 5, NIBBLE0)]);
    }
}
