//! Back-off n-gram language model — the ablation baseline for the GPT
//! generator (experiment A1 in DESIGN.md).

use std::collections::HashMap;

use rand::Rng;

use crate::tokenizer::{BOS, EOS};

/// Trigram model with bigram/unigram back-off and additive smoothing.
///
/// # Examples
///
/// ```
/// use chatfuzz_lm::ngram::NgramLm;
/// use rand::SeedableRng;
///
/// let data = vec![vec![1u32, 4, 5, 4, 5, 2]];
/// let lm = NgramLm::train(&data, 8);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let out = lm.generate(&[1], 16, &mut rng);
/// assert!(out.len() <= 17);
/// ```
#[derive(Debug, Clone)]
pub struct NgramLm {
    vocab: u32,
    unigram: HashMap<u32, u32>,
    bigram: HashMap<u32, HashMap<u32, u32>>,
    trigram: HashMap<(u32, u32), HashMap<u32, u32>>,
    total: u32,
}

impl NgramLm {
    /// Counts n-grams over the token corpus.
    pub fn train(data: &[Vec<u32>], vocab: u32) -> NgramLm {
        let mut lm = NgramLm {
            vocab,
            unigram: HashMap::new(),
            bigram: HashMap::new(),
            trigram: HashMap::new(),
            total: 0,
        };
        for seq in data {
            lm.absorb(seq);
        }
        lm
    }

    /// Folds one more token sequence into the counts — the online half of
    /// training. A sequence absorbed here weighs exactly as much as one
    /// seen at [`NgramLm::train`] time, so coverage-advancing inputs fed
    /// back during a campaign shift future sampling toward what worked.
    pub fn absorb(&mut self, seq: &[u32]) {
        for (i, &t) in seq.iter().enumerate() {
            *self.unigram.entry(t).or_insert(0) += 1;
            self.total += 1;
            if i >= 1 {
                *self.bigram.entry(seq[i - 1]).or_default().entry(t).or_insert(0) += 1;
            }
            if i >= 2 {
                *self.trigram.entry((seq[i - 2], seq[i - 1])).or_default().entry(t).or_insert(0) +=
                    1;
            }
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> u32 {
        self.vocab
    }

    fn sample_from<R: Rng>(&self, counts: &HashMap<u32, u32>, rng: &mut R) -> u32 {
        let total: u32 = counts.values().sum();
        let mut draw = rng.gen_range(0..total.max(1));
        let mut items: Vec<(&u32, &u32)> = counts.iter().collect();
        items.sort_by_key(|(t, _)| **t); // determinism per seed
        for (t, c) in items {
            if draw < *c {
                return *t;
            }
            draw -= c;
        }
        EOS
    }

    /// Samples the next token given the last two.
    pub fn next_token<R: Rng>(&self, context: &[u32], rng: &mut R) -> u32 {
        if context.len() >= 2 {
            let key = (context[context.len() - 2], context[context.len() - 1]);
            if let Some(counts) = self.trigram.get(&key) {
                return self.sample_from(counts, rng);
            }
        }
        if let Some(&last) = context.last() {
            if let Some(counts) = self.bigram.get(&last) {
                return self.sample_from(counts, rng);
            }
        }
        if self.total > 0 {
            return self.sample_from(&self.unigram, rng);
        }
        rng.gen_range(0..self.vocab.max(1))
    }

    /// Generates a continuation, stopping at `EOS` or `max_new` tokens.
    pub fn generate<R: Rng>(&self, prompt: &[u32], max_new: usize, rng: &mut R) -> Vec<u32> {
        let mut tokens = if prompt.is_empty() { vec![BOS] } else { prompt.to_vec() };
        for _ in 0..max_new {
            let next = self.next_token(&tokens, rng);
            tokens.push(next);
            if next == EOS {
                break;
            }
        }
        tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_a_deterministic_chain() {
        // Language: 1 -> 7 -> 8 -> 9 -> 2, always.
        let data = vec![vec![1u32, 7, 8, 9, 2]; 5];
        let lm = NgramLm::train(&data, 16);
        let mut rng = StdRng::seed_from_u64(1);
        let out = lm.generate(&[1], 8, &mut rng);
        assert_eq!(out, vec![1, 7, 8, 9, 2]);
    }

    #[test]
    fn backs_off_when_context_is_unseen() {
        let data = vec![vec![1u32, 7, 8, 2]];
        let lm = NgramLm::train(&data, 16);
        let mut rng = StdRng::seed_from_u64(1);
        // Context (14, 15) never seen: falls back to bigram/unigram, still
        // produces an in-vocab token.
        let t = lm.next_token(&[14, 15], &mut rng);
        assert!(t < 16);
    }

    #[test]
    fn absorb_matches_training_on_the_same_data() {
        let data = vec![vec![1u32, 7, 8, 9, 2], vec![1, 7, 9, 2]];
        let trained = NgramLm::train(&data, 16);
        let mut grown = NgramLm::train(&data[..1], 16);
        grown.absorb(&data[1]);
        // Same counts → same deterministic generations.
        for seed in 0..4 {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            assert_eq!(trained.generate(&[1], 8, &mut r1), grown.generate(&[1], 8, &mut r2));
        }
    }

    #[test]
    fn untrained_model_still_generates() {
        let lm = NgramLm::train(&[], 8);
        let mut rng = StdRng::seed_from_u64(1);
        let out = lm.generate(&[], 4, &mut rng);
        assert!(!out.is_empty());
    }
}
