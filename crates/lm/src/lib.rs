//! The language-model half of ChatFuzz: machine-code tokenizer, mini-GPT,
//! unsupervised training, and an n-gram ablation baseline.
//!
//! The paper (§III-B, §IV-C) trains a GPT-2-family model on ~500 K test
//! vectors extracted from a compiled Linux kernel, using a tokenizer
//! trained over the ISA. This crate reproduces that stack at laptop scale:
//!
//! * [`tokenizer::Tokenizer`] — BPE over instruction hex nibbles with an
//!   instruction separator; malformed decodes map to illegal words so the
//!   cleanup-RL reward can penalise them; serialisable via
//!   `merges`/`from_parts` for model-state checkpoints;
//! * [`model::Gpt`] — a decoder-only transformer with a PPO value head,
//!   built on `chatfuzz-autograd`, with two sampling paths: the naive
//!   per-token full forward ([`Gpt::generate`], kept as the equality
//!   baseline) and the KV-cached incremental decoder
//!   ([`Gpt::generate_into`] / [`Gpt::generate_batch_into`] over a
//!   reusable [`KvCache`] arena) — token-identical by construction,
//!   `O(T)` instead of `O(T²)` rows per sequence;
//! * [`train`] — the unsupervised "Initial Training" step;
//! * [`ngram::NgramLm`] — the generator ablation (A1 in DESIGN.md), with
//!   [`NgramLm::absorb`] for online count updates.
//!
//! # Actor/learner contract (PR 7)
//!
//! Inside a campaign the [`Gpt`] plays two roles at once. The **actor**
//! is a frozen clone of the weights, stamped with a monotonically
//! increasing *publish epoch*; every batch is sampled from it on the
//! worker pool, so sampling never observes a half-trained model. The
//! **learner** (a `chatfuzz_rl::PpoTrainer` owned by the campaign's LM
//! generator) queues scored rollouts and trains only at deterministic
//! publish boundaries — every `publish_every` observed batches — then
//! copies its weights over the actor and bumps the epoch. Between
//! boundaries actor and learner weights are bit-identical, which is why
//! checkpoints persist a single weight set plus the queue and epoch
//! counters, and why a SIGKILL-resume replays to the same tokens.
//!
//! # Examples
//!
//! Sample through the KV-cached path (the campaign's production path; the
//! naive `generate` returns the same tokens, one full forward per token):
//!
//! ```
//! use chatfuzz_lm::{Gpt, GptConfig, KvCache, Tokenizer};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let corpus = vec![vec![0x0010_0093u32, 0x0000_0533]];
//! let tok = Tokenizer::train(&corpus, 64);
//! let model = Gpt::new(
//!     GptConfig::tiny(tok.vocab_size() as usize),
//!     &mut StdRng::seed_from_u64(0),
//! );
//!
//! let mut cache = KvCache::new(*model.config());
//! let mut tokens = Vec::new();
//! let prompt = [chatfuzz_lm::tokenizer::BOS];
//! model.generate_into(&prompt, 8, 1.0, 8, &mut StdRng::seed_from_u64(1), &mut cache, &mut tokens);
//! let _program_bytes = tok.decode_to_bytes(&tokens);
//!
//! // The naive path emits the same tokens under the same RNG stream.
//! assert_eq!(model.generate(&prompt, 8, 1.0, 8, &mut StdRng::seed_from_u64(1)), tokens);
//! ```

pub mod model;
pub mod ngram;
pub mod tokenizer;
pub mod train;

pub use model::{sample_row, Forward, Gpt, GptConfig, KvCache};
pub use ngram::NgramLm;
pub use tokenizer::Tokenizer;
pub use train::{evaluate_lm, train_lm, TrainConfig, TrainStep};
