//! The language-model half of ChatFuzz: machine-code tokenizer, mini-GPT,
//! unsupervised training, and an n-gram ablation baseline.
//!
//! The paper (§III-B, §IV-C) trains a GPT-2-family model on ~500 K test
//! vectors extracted from a compiled Linux kernel, using a tokenizer
//! trained over the ISA. This crate reproduces that stack at laptop scale:
//!
//! * [`tokenizer::Tokenizer`] — BPE over instruction hex nibbles with an
//!   instruction separator; malformed decodes map to illegal words so the
//!   cleanup-RL reward can penalise them;
//! * [`model::Gpt`] — a decoder-only transformer with a PPO value head,
//!   built on `chatfuzz-autograd`;
//! * [`train`] — the unsupervised "Initial Training" step;
//! * [`ngram::NgramLm`] — the generator ablation (A1 in DESIGN.md).
//!
//! # Examples
//!
//! ```
//! use chatfuzz_lm::{Gpt, GptConfig, Tokenizer};
//! use rand::SeedableRng;
//!
//! let corpus = vec![vec![0x0010_0093u32, 0x0000_0533]];
//! let tok = Tokenizer::train(&corpus, 64);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let model = Gpt::new(GptConfig::tiny(tok.vocab_size() as usize), &mut rng);
//! let tokens = model.generate(&[chatfuzz_lm::tokenizer::BOS], 8, 1.0, 8, &mut rng);
//! let _program_bytes = tok.decode_to_bytes(&tokens);
//! ```

pub mod model;
pub mod ngram;
pub mod tokenizer;
pub mod train;

pub use model::{sample_row, Forward, Gpt, GptConfig};
pub use ngram::NgramLm;
pub use tokenizer::Tokenizer;
pub use train::{evaluate_lm, train_lm, TrainConfig, TrainStep};
