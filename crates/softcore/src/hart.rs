//! The golden-model interpreter hart (one instruction per step).

use chatfuzz_isa::semantics::{alu, amo, branch_taken, extend_loaded, muldiv};
use chatfuzz_isa::{CsrSrc, DecodeCache, Exception, Instr, MemWidth, Reg, SystemOp};

use crate::csr::CsrFile;
use crate::mem::{Memory, StoreEffect};
use crate::trace::{CommitRecord, ExitReason, MemEffect, TrapRecord};

/// Outcome of one [`Hart::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepResult {
    /// The slot committed (possibly as a taken trap) and execution continues.
    Committed(CommitRecord),
    /// The simulation must halt; the final record (if any) is included.
    Halt(ExitReason, Option<CommitRecord>),
}

/// Architectural state of one hart plus its memory.
#[derive(Debug, Clone)]
pub struct Hart {
    /// Integer register file (`x0` kept at zero by construction).
    pub regs: [u64; 32],
    /// Program counter.
    pub pc: u64,
    /// CSR file (including the privilege level).
    pub csrs: CsrFile,
    /// Physical memory.
    pub mem: Memory,
    /// LR/SC reservation address, if armed.
    reservation: Option<u64>,
    /// Word-validated decode cache (see [`DecodeCache`]); hits are
    /// bit-identical to decoding the fetched word, so it survives resets
    /// and self-modifying stores without any flush protocol.
    decode: DecodeCache,
}

impl Hart {
    /// Creates a hart with zeroed registers at the given reset PC.
    pub fn new(mem: Memory, reset_pc: u64) -> Hart {
        Hart {
            regs: [0; 32],
            pc: reset_pc,
            csrs: CsrFile::new(),
            mem,
            reservation: None,
            decode: DecodeCache::default(),
        }
    }

    /// Power-on reset of the architectural state (registers, CSRs, PC,
    /// LR/SC reservation). Memory is *not* touched — pair with
    /// [`Memory::reset_with_image`] to recycle the whole hart between
    /// tests. The decode cache is kept: entries are word-validated, so
    /// stale entries can never change what executes.
    pub fn reset(&mut self, reset_pc: u64) {
        self.regs = [0; 32];
        self.pc = reset_pc;
        self.csrs = CsrFile::new();
        self.reservation = None;
    }

    /// Turns the decode cache off, making every step decode the fetched
    /// word from scratch — the exact pre-cache behaviour. Used by the
    /// throughput benchmark's naive baseline; results are identical
    /// either way (the cache is word-validated).
    pub fn disable_decode_cache(&mut self) {
        self.decode.set_enabled(false);
    }

    /// Reads a register (x0 reads as zero).
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register (writes to x0 are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Executes one instruction slot.
    pub fn step(&mut self) -> StepResult {
        let pc = self.pc;
        self.csrs.tick_cycle(1);
        let word = match self.mem.fetch(pc) {
            Ok(w) => w,
            Err(e) => return self.trap(e, pc, 0),
        };
        let instr = match self.decode.decode(pc, word) {
            Ok(i) => i,
            Err(_) => return self.trap(Exception::IllegalInstr { word }, pc, word),
        };
        match self.execute(instr, pc, word) {
            Exec::Next(record) => {
                self.pc = pc.wrapping_add(4);
                self.csrs.tick_instret();
                StepResult::Committed(record)
            }
            Exec::Jump(target, record) => {
                self.pc = target;
                self.csrs.tick_instret();
                StepResult::Committed(record)
            }
            Exec::Trap(e) => self.trap(e, pc, word),
            Exec::Halt(reason, record) => {
                self.csrs.tick_instret();
                StepResult::Halt(reason, Some(record))
            }
        }
    }

    /// Takes a trap: on an unset vector, halts instead (unhandled trap).
    fn trap(&mut self, e: Exception, pc: u64, word: u32) -> StepResult {
        self.reservation = None;
        let from = self.csrs.priv_level;
        let vec =
            if self.csrs.delegated_to_s(e.cause()) { self.csrs.stvec() } else { self.csrs.mtvec() };
        if vec == 0 {
            return StepResult::Halt(ExitReason::UnhandledTrap(e), None);
        }
        let (to, handler_pc) = self.csrs.take_trap(&e, pc);
        self.pc = handler_pc;
        StepResult::Committed(CommitRecord {
            pc,
            word,
            priv_level: from,
            rd_write: None,
            mem: None,
            trap: Some(TrapRecord { exception: e, from, to, handler_pc }),
        })
    }

    fn execute(&mut self, instr: Instr, pc: u64, word: u32) -> Exec {
        let priv_level = self.csrs.priv_level;
        let record =
            |rd_write, mem| CommitRecord { pc, word, priv_level, rd_write, mem, trap: None };
        // The golden tracer never reports x0 as a destination.
        let vis = |rd: Reg, v: u64| (!rd.is_zero()).then_some((rd, v));
        match instr {
            Instr::Lui { rd, imm } => {
                self.set_reg(rd, imm as u64);
                Exec::Next(record(vis(rd, imm as u64), None))
            }
            Instr::Auipc { rd, imm } => {
                let v = pc.wrapping_add(imm as u64);
                self.set_reg(rd, v);
                Exec::Next(record(vis(rd, v), None))
            }
            Instr::Jal { rd, offset } => {
                let target = pc.wrapping_add(offset as u64);
                if !target.is_multiple_of(4) {
                    return Exec::Trap(Exception::InstrAddrMisaligned { addr: target });
                }
                let link = pc.wrapping_add(4);
                self.set_reg(rd, link);
                Exec::Jump(target, record(vis(rd, link), None))
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u64) & !1;
                if !target.is_multiple_of(4) {
                    return Exec::Trap(Exception::InstrAddrMisaligned { addr: target });
                }
                let link = pc.wrapping_add(4);
                self.set_reg(rd, link);
                Exec::Jump(target, record(vis(rd, link), None))
            }
            Instr::Branch { cond, rs1, rs2, offset } => {
                if branch_taken(cond, self.reg(rs1), self.reg(rs2)) {
                    let target = pc.wrapping_add(offset as u64);
                    if !target.is_multiple_of(4) {
                        return Exec::Trap(Exception::InstrAddrMisaligned { addr: target });
                    }
                    Exec::Jump(target, record(None, None))
                } else {
                    Exec::Next(record(None, None))
                }
            }
            Instr::Load { width, signed, rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u64);
                match self.mem.load(addr, width) {
                    Ok(raw) => {
                        let v = extend_loaded(raw, width, signed);
                        self.set_reg(rd, v);
                        let mem = MemEffect {
                            addr,
                            bytes: width.bytes() as u8,
                            is_store: false,
                            value: v,
                        };
                        Exec::Next(record(vis(rd, v), Some(mem)))
                    }
                    Err(e) => Exec::Trap(e),
                }
            }
            Instr::Store { width, rs2, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u64);
                let value = self.reg(rs2);
                match self.mem.store(addr, width, value) {
                    Ok(effect) => {
                        self.reservation = None;
                        let mem =
                            MemEffect { addr, bytes: width.bytes() as u8, is_store: true, value };
                        match effect {
                            StoreEffect::Ram => Exec::Next(record(None, Some(mem))),
                            StoreEffect::ToHost(v) => {
                                Exec::Halt(ExitReason::ToHost(v), record(None, Some(mem)))
                            }
                        }
                    }
                    Err(e) => Exec::Trap(e),
                }
            }
            Instr::OpImm { op, rd, rs1, imm, word: w } => {
                let v = alu(op, self.reg(rs1), imm as u64, w);
                self.set_reg(rd, v);
                Exec::Next(record(vis(rd, v), None))
            }
            Instr::Op { op, rd, rs1, rs2, word: w } => {
                let v = alu(op, self.reg(rs1), self.reg(rs2), w);
                self.set_reg(rd, v);
                Exec::Next(record(vis(rd, v), None))
            }
            Instr::MulDiv { op, rd, rs1, rs2, word: w } => {
                let v = muldiv(op, self.reg(rs1), self.reg(rs2), w);
                self.set_reg(rd, v);
                Exec::Next(record(vis(rd, v), None))
            }
            Instr::Amo { op, width, rd, rs1, rs2, .. } => {
                let addr = self.reg(rs1);
                // AMOs require natural alignment; both the misaligned and the
                // PMA case report as *store* exceptions per the spec.
                if !addr.is_multiple_of(width.bytes()) {
                    return Exec::Trap(Exception::StoreAddrMisaligned { addr });
                }
                if !self.mem.in_ram(addr, width.bytes()) {
                    return Exec::Trap(Exception::StoreAccessFault { addr });
                }
                let old_raw = self.mem.read_raw(addr, width.bytes());
                let old = extend_loaded(old_raw, width, true);
                let new = amo(op, old_raw, self.reg(rs2), width);
                self.mem.write_raw(addr, width.bytes(), new);
                self.reservation = None;
                self.set_reg(rd, old);
                let mem =
                    MemEffect { addr, bytes: width.bytes() as u8, is_store: true, value: new };
                Exec::Next(record(vis(rd, old), Some(mem)))
            }
            Instr::LoadReserved { width, rd, rs1, .. } => {
                let addr = self.reg(rs1);
                if !addr.is_multiple_of(width.bytes()) {
                    return Exec::Trap(Exception::LoadAddrMisaligned { addr });
                }
                if !self.mem.in_ram(addr, width.bytes()) {
                    return Exec::Trap(Exception::LoadAccessFault { addr });
                }
                let raw = self.mem.read_raw(addr, width.bytes());
                let v = extend_loaded(raw, width, true);
                self.reservation = Some(addr);
                self.set_reg(rd, v);
                let mem = MemEffect { addr, bytes: width.bytes() as u8, is_store: false, value: v };
                Exec::Next(record(vis(rd, v), Some(mem)))
            }
            Instr::StoreConditional { width, rd, rs1, rs2, .. } => {
                let addr = self.reg(rs1);
                if !addr.is_multiple_of(width.bytes()) {
                    return Exec::Trap(Exception::StoreAddrMisaligned { addr });
                }
                if !self.mem.in_ram(addr, width.bytes()) {
                    return Exec::Trap(Exception::StoreAccessFault { addr });
                }
                let success = self.reservation == Some(addr);
                self.reservation = None;
                let result = u64::from(!success);
                self.set_reg(rd, result);
                let mem = if success {
                    let value = self.reg(rs2);
                    self.mem.write_raw(
                        addr,
                        width.bytes(),
                        match width {
                            MemWidth::W => value & 0xffff_ffff,
                            _ => value,
                        },
                    );
                    Some(MemEffect { addr, bytes: width.bytes() as u8, is_store: true, value })
                } else {
                    None
                };
                Exec::Next(record(vis(rd, result), mem))
            }
            Instr::Csr { op, rd, csr, src } => {
                let (src_value, src_is_zero_arg) = match src {
                    CsrSrc::Reg(rs1) => (self.reg(rs1), rs1.is_zero()),
                    CsrSrc::Imm(imm) => (u64::from(imm), imm == 0),
                };
                match self.csrs.execute(op, csr, src_value, src_is_zero_arg) {
                    Ok(old) => {
                        self.set_reg(rd, old);
                        Exec::Next(record(vis(rd, old), None))
                    }
                    Err(_) => Exec::Trap(Exception::IllegalInstr { word }),
                }
            }
            Instr::Fence { .. } => Exec::Next(record(None, None)),
            // The golden model's memory is always coherent, so fence.i is
            // architecturally a no-op here. (The Rocket model's icache is
            // NOT coherent without it — that is injected BUG1.)
            Instr::FenceI => {
                self.reservation = None;
                Exec::Next(record(None, None))
            }
            Instr::System(SystemOp::Ecall) => {
                Exec::Trap(Exception::Ecall { from: self.csrs.priv_level })
            }
            Instr::System(SystemOp::Ebreak) => Exec::Trap(Exception::Breakpoint { addr: pc }),
            Instr::System(SystemOp::Mret) => match self.csrs.mret() {
                Ok(target) => {
                    self.reservation = None;
                    Exec::Jump(target, record(None, None))
                }
                Err(_) => Exec::Trap(Exception::IllegalInstr { word }),
            },
            Instr::System(SystemOp::Sret) => match self.csrs.sret() {
                Ok(target) => {
                    self.reservation = None;
                    Exec::Jump(target, record(None, None))
                }
                Err(_) => Exec::Trap(Exception::IllegalInstr { word }),
            },
            Instr::System(SystemOp::Wfi) => {
                if self.csrs.wfi_is_illegal() {
                    Exec::Trap(Exception::IllegalInstr { word })
                } else {
                    Exec::Halt(ExitReason::Wfi, record(None, None))
                }
            }
            Instr::SfenceVma { .. } => {
                if self.csrs.sfence_is_illegal() {
                    Exec::Trap(Exception::IllegalInstr { word })
                } else {
                    Exec::Next(record(None, None))
                }
            }
        }
    }
}

enum Exec {
    Next(CommitRecord),
    Jump(u64, CommitRecord),
    Trap(Exception),
    Halt(ExitReason, CommitRecord),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{DEFAULT_RAM_BASE, TOHOST_ADDR};
    use chatfuzz_isa::asm::Assembler;
    use chatfuzz_isa::{AluOp, BranchCond, Csr};

    fn hart_with(asm: &Assembler) -> Hart {
        let mut mem = Memory::new(DEFAULT_RAM_BASE, 1 << 16);
        mem.load_image(DEFAULT_RAM_BASE, &asm.assemble_bytes().unwrap());
        Hart::new(mem, DEFAULT_RAM_BASE)
    }

    fn a0() -> Reg {
        Reg::new(10).unwrap()
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut asm = Assembler::new();
        asm.li(a0(), 20);
        asm.push(Instr::OpImm { op: AluOp::Add, rd: a0(), rs1: a0(), imm: 22, word: false });
        let mut h = hart_with(&asm);
        for _ in 0..asm.len() {
            assert!(matches!(h.step(), StepResult::Committed(_)));
        }
        assert_eq!(h.reg(a0()), 42);
    }

    #[test]
    fn branch_loop_terminates() {
        let mut asm = Assembler::new();
        asm.li(a0(), 5);
        asm.label("loop");
        asm.push(Instr::OpImm { op: AluOp::Add, rd: a0(), rs1: a0(), imm: -1, word: false });
        asm.branch_to(BranchCond::Ne, a0(), Reg::X0, "loop");
        let mut h = hart_with(&asm);
        for _ in 0..32 {
            h.step();
        }
        assert_eq!(h.reg(a0()), 0);
    }

    #[test]
    fn wfi_halts() {
        let mut asm = Assembler::new();
        asm.push(Instr::System(SystemOp::Wfi));
        let mut h = hart_with(&asm);
        assert!(matches!(h.step(), StepResult::Halt(ExitReason::Wfi, Some(_))));
    }

    #[test]
    fn tohost_store_halts_with_value() {
        let mut asm = Assembler::new();
        let t0 = Reg::new(5).unwrap();
        asm.li(t0, TOHOST_ADDR as i64);
        asm.li(a0(), 0x1234);
        asm.push(Instr::Store { width: MemWidth::D, rs2: a0(), rs1: t0, offset: 0 });
        let mut h = hart_with(&asm);
        let mut last = None;
        for _ in 0..16 {
            match h.step() {
                StepResult::Halt(reason, _) => {
                    last = Some(reason);
                    break;
                }
                StepResult::Committed(_) => {}
            }
        }
        assert_eq!(last, Some(ExitReason::ToHost(0x1234)));
    }

    #[test]
    fn unhandled_trap_halts_when_mtvec_unset() {
        let mut asm = Assembler::new();
        asm.push(Instr::System(SystemOp::Ecall));
        let mut h = hart_with(&asm);
        match h.step() {
            StepResult::Halt(ExitReason::UnhandledTrap(e), None) => {
                assert_eq!(e.cause(), 11);
            }
            other => panic!("expected unhandled trap, got {other:?}"),
        }
    }

    #[test]
    fn handled_trap_vectors_and_mret_returns() {
        // Layout: [0] set mtvec=handler, [..] ecall, wfi ; handler: mret
        let handler_off = 7 * 4; // after li(2) + csrrw + ecall + wfi -> pad
        let mut asm = Assembler::new();
        let t0 = Reg::new(5).unwrap();
        asm.li(t0, (DEFAULT_RAM_BASE + handler_off) as i64); // 2 instrs (lui+addiw)? use li len check below
                                                             // Re-do deterministically: write program manually with known slots.
        let _ = asm;
        let mut asm = Assembler::new();
        asm.push(Instr::Auipc { rd: t0, imm: 0 }); // t0 = base
        asm.push(Instr::OpImm { op: AluOp::Add, rd: t0, rs1: t0, imm: 24, word: false }); // handler at +24
        asm.push(Instr::Csr {
            op: chatfuzz_isa::CsrOp::Rw,
            rd: Reg::X0,
            csr: Csr::MTVEC.addr(),
            src: chatfuzz_isa::CsrSrc::Reg(t0),
        });
        asm.push(Instr::System(SystemOp::Ecall)); // slot 3, pc base+12
        asm.push(Instr::System(SystemOp::Wfi)); // return lands at mepc (base+12)&!3 -> need mepc bump
        asm.nop(); // pad to +24
                   // handler: advance mepc by 4 then mret
        asm.push(Instr::Csr {
            op: chatfuzz_isa::CsrOp::Rs,
            rd: t0,
            csr: Csr::MEPC.addr(),
            src: chatfuzz_isa::CsrSrc::Imm(0),
        });
        asm.push(Instr::OpImm { op: AluOp::Add, rd: t0, rs1: t0, imm: 4, word: false });
        asm.push(Instr::Csr {
            op: chatfuzz_isa::CsrOp::Rw,
            rd: Reg::X0,
            csr: Csr::MEPC.addr(),
            src: chatfuzz_isa::CsrSrc::Reg(t0),
        });
        asm.push(Instr::System(SystemOp::Mret));
        let mut h = hart_with(&asm);
        let mut exit = None;
        let mut saw_trap = false;
        for _ in 0..32 {
            match h.step() {
                StepResult::Committed(r) => saw_trap |= r.trap.is_some(),
                StepResult::Halt(reason, _) => {
                    exit = Some(reason);
                    break;
                }
            }
        }
        assert!(saw_trap, "ecall should vector through the handler");
        assert_eq!(exit, Some(ExitReason::Wfi));
    }

    #[test]
    fn lr_sc_success_and_failure() {
        let addr = DEFAULT_RAM_BASE + 0x100;
        let t0 = Reg::new(5).unwrap();
        let t1 = Reg::new(6).unwrap();
        let mut asm = Assembler::new();
        asm.li(t0, addr as i64);
        asm.push(Instr::LoadReserved {
            width: MemWidth::D,
            rd: a0(),
            rs1: t0,
            aq: false,
            rl: false,
        });
        asm.push(Instr::StoreConditional {
            width: MemWidth::D,
            rd: t1,
            rs1: t0,
            rs2: t0,
            aq: false,
            rl: false,
        });
        // Second SC without reservation must fail.
        asm.push(Instr::StoreConditional {
            width: MemWidth::D,
            rd: a0(),
            rs1: t0,
            rs2: t0,
            aq: false,
            rl: false,
        });
        let mut h = hart_with(&asm);
        for _ in 0..asm.len() {
            h.step();
        }
        assert_eq!(h.reg(t1), 0, "first sc succeeds");
        assert_eq!(h.reg(a0()), 1, "second sc fails");
        assert_eq!(h.mem.read_raw(addr, 8), addr);
    }

    #[test]
    fn x0_writes_never_traced() {
        let mut asm = Assembler::new();
        asm.push(Instr::OpImm { op: AluOp::Add, rd: Reg::X0, rs1: Reg::X0, imm: 7, word: false });
        let mut h = hart_with(&asm);
        match h.step() {
            StepResult::Committed(r) => assert_eq!(r.rd_write, None),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(h.reg(Reg::X0), 0);
    }

    #[test]
    fn misaligned_beats_access_fault_priority() {
        // Load from an address that is both misaligned and outside RAM.
        let mut asm = Assembler::new();
        let t0 = Reg::new(5).unwrap();
        asm.li(t0, 0x3);
        asm.push(Instr::Load { width: MemWidth::W, signed: true, rd: a0(), rs1: t0, offset: 0 });
        let mut h = hart_with(&asm);
        let mut result = None;
        for _ in 0..8 {
            if let StepResult::Halt(reason, _) = h.step() {
                result = Some(reason);
                break;
            }
        }
        assert_eq!(
            result,
            Some(ExitReason::UnhandledTrap(Exception::LoadAddrMisaligned { addr: 3 }))
        );
    }

    #[test]
    fn illegal_word_raises_illegal_instruction() {
        let mut mem = Memory::new(DEFAULT_RAM_BASE, 4096);
        mem.load_image(DEFAULT_RAM_BASE, &0xffff_ffffu32.to_le_bytes());
        let mut h = Hart::new(mem, DEFAULT_RAM_BASE);
        match h.step() {
            StepResult::Halt(ExitReason::UnhandledTrap(e), _) => {
                assert_eq!(e.cause(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn jalr_clears_bit_zero() {
        let mut asm = Assembler::new();
        let t0 = Reg::new(5).unwrap();
        asm.push(Instr::Auipc { rd: t0, imm: 0 });
        asm.push(Instr::Jalr { rd: Reg::X0, rs1: t0, offset: 9 }); // target base+9 -> &!1 = +8
        asm.push(Instr::System(SystemOp::Wfi)); // at +8
        let mut h = hart_with(&asm);
        h.step();
        h.step();
        assert_eq!(h.pc, DEFAULT_RAM_BASE + 8);
    }
}
