//! Golden-model RISC-V ISA simulator (the reproduction's Spike substitute).
//!
//! ChatFuzz is a *differential* fuzzer: every generated input runs both on
//! the device under test (the microarchitectural cores in `chatfuzz-rtl`)
//! and on a golden model, and the two architectural traces are diffed. This
//! crate provides that golden model: an RV64IMA+Zicsr+Zifencei interpreter
//! with M/S/U privilege, synchronous traps with delegation, LR/SC, a
//! `tohost` halt device, and a commit [`trace`] format shared with the RTL
//! cores.
//!
//! The instruction semantics come from [`chatfuzz_isa::semantics`], shared
//! with the RTL cores, so trace mismatches can only be caused by the bugs
//! deliberately injected into the Rocket-style core (see `chatfuzz-rtl`).
//!
//! # Examples
//!
//! ```
//! use chatfuzz_softcore::{SoftCore, SoftCoreConfig};
//! use chatfuzz_isa::asm::Assembler;
//! use chatfuzz_isa::{Instr, Reg, SystemOp};
//!
//! let mut asm = Assembler::new();
//! asm.li(Reg::new(10).unwrap(), 42);
//! asm.push(Instr::System(SystemOp::Wfi));
//! let trace = SoftCore::new(SoftCoreConfig::default())
//!     .run(&asm.assemble_bytes().unwrap());
//! assert_eq!(trace.records.last().unwrap().pc % 4, 0);
//! ```

pub mod csr;
pub mod hart;
pub mod mem;
pub mod sim;
pub mod trace;

pub use csr::CsrFile;
pub use hart::{Hart, StepResult};
pub use mem::Memory;
pub use sim::{SoftCore, SoftCoreConfig, SoftCoreRunner};
pub use trace::{CommitRecord, ExitReason, MemEffect, Trace, TrapRecord};
