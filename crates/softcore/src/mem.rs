//! Flat physical memory with PMA (physical memory attribute) checking.

use chatfuzz_isa::{Exception, MemWidth};

/// Default RAM base address (matches the usual RISC-V reset vector region).
pub const DEFAULT_RAM_BASE: u64 = 0x8000_0000;
/// Default RAM size.
pub const DEFAULT_RAM_SIZE: u64 = 1 << 20;
/// Address of the `tohost` MMIO doubleword; a store here ends the program,
/// mirroring the riscv-tests/Spike convention.
pub const TOHOST_ADDR: u64 = 0x4000_0000;

/// Kind of access, used to pick the right exception flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch.
    Fetch,
    /// Data load.
    Load,
    /// Data store or AMO.
    Store,
}

/// Result of a store: either a plain memory write happened, or the magic
/// `tohost` device was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreEffect {
    /// Normal RAM write.
    Ram,
    /// `tohost` write with the stored value; the simulation should halt.
    ToHost(u64),
}

/// Byte-addressed physical memory: one RAM region plus the `tohost` device.
///
/// # Examples
///
/// ```
/// use chatfuzz_softcore::mem::{Memory, DEFAULT_RAM_BASE};
/// use chatfuzz_isa::MemWidth;
///
/// let mut mem = Memory::new(DEFAULT_RAM_BASE, 4096);
/// mem.store(DEFAULT_RAM_BASE, MemWidth::D, 0xdead_beef).unwrap();
/// assert_eq!(mem.load(DEFAULT_RAM_BASE, MemWidth::D).unwrap(), 0xdead_beef);
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    base: u64,
    ram: Vec<u8>,
    /// Up to two dirty windows `[lo, hi)` of byte offsets written since
    /// the last reset (`hi == 0` marks an empty window).
    /// [`Memory::reset_with_image`] zeroes only these spans, so recycling
    /// a 1 MiB arena costs what the test actually touched. Two windows
    /// (not one) because the typical test dirties the program image at
    /// the *bottom* of RAM and the stack at the *top* — a single merged
    /// window would degenerate to re-zeroing the whole arena.
    dirty: [(usize, usize); 2],
}

impl Memory {
    /// Creates zeroed RAM of `size` bytes at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or `base + size` overflows.
    pub fn new(base: u64, size: u64) -> Memory {
        assert!(size > 0, "RAM size must be positive");
        assert!(base.checked_add(size).is_some(), "RAM range overflows");
        Memory { base, ram: vec![0; size as usize], dirty: [(0, 0); 2] }
    }

    #[inline]
    fn mark_dirty(&mut self, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        let (lo, hi) = (off, off + len);
        // Extend whichever window grows the least (an empty window costs
        // exactly `len`), keeping far-apart writes in separate windows.
        let growth = |w: (usize, usize)| {
            if w.1 == 0 {
                len
            } else {
                (w.1.max(hi) - w.0.min(lo)) - (w.1 - w.0)
            }
        };
        let i = usize::from(growth(self.dirty[1]) < growth(self.dirty[0]));
        let w = &mut self.dirty[i];
        if w.1 == 0 {
            *w = (lo, hi);
        } else {
            *w = (w.0.min(lo), w.1.max(hi));
        }
    }

    /// Re-zeroes everything written since construction (or the previous
    /// reset) and loads a fresh program image at `addr` — the arena-reuse
    /// replacement for building a new `Memory` per test. Only the dirty
    /// window is zeroed, so the cost scales with what the last run touched,
    /// not with the RAM size.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit in RAM (same as
    /// [`Memory::load_image`]).
    pub fn reset_with_image(&mut self, addr: u64, image: &[u8]) {
        for (lo, hi) in std::mem::take(&mut self.dirty) {
            self.ram[lo..hi].fill(0);
        }
        self.load_image(addr, image);
    }

    /// RAM base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// RAM size in bytes.
    pub fn size(&self) -> u64 {
        self.ram.len() as u64
    }

    /// Whether `[addr, addr+len)` lies entirely inside RAM.
    pub fn in_ram(&self, addr: u64, len: u64) -> bool {
        addr >= self.base && addr.checked_add(len).is_some_and(|end| end <= self.base + self.size())
    }

    /// Whether the access hits the `tohost` device.
    pub fn is_tohost(&self, addr: u64) -> bool {
        (TOHOST_ADDR..TOHOST_ADDR + 8).contains(&addr)
    }

    /// Copies a program image into RAM at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit in RAM.
    pub fn load_image(&mut self, addr: u64, image: &[u8]) {
        assert!(self.in_ram(addr, image.len() as u64), "image outside RAM");
        let off = (addr - self.base) as usize;
        self.ram[off..off + image.len()].copy_from_slice(image);
        self.mark_dirty(off, image.len());
    }

    /// Raw little-endian read without PMA/alignment checks.
    ///
    /// # Panics
    ///
    /// Panics if the range is outside RAM; callers must check first.
    pub fn read_raw(&self, addr: u64, len: u64) -> u64 {
        let off = (addr - self.base) as usize;
        let mut value = 0u64;
        for i in (0..len as usize).rev() {
            value = (value << 8) | u64::from(self.ram[off + i]);
        }
        value
    }

    /// Raw little-endian write without PMA/alignment checks.
    ///
    /// # Panics
    ///
    /// Panics if the range is outside RAM; callers must check first.
    pub fn write_raw(&mut self, addr: u64, len: u64, value: u64) {
        let off = (addr - self.base) as usize;
        for i in 0..len as usize {
            self.ram[off + i] = (value >> (8 * i)) as u8;
        }
        self.mark_dirty(off, len as usize);
    }

    /// Checked load: alignment first, then PMA — the spec priority order
    /// (misaligned outranks access fault for the same access).
    ///
    /// # Errors
    ///
    /// Returns the appropriate misaligned/access-fault exception.
    pub fn load(&self, addr: u64, width: MemWidth) -> Result<u64, Exception> {
        let len = width.bytes();
        if !addr.is_multiple_of(len) {
            return Err(Exception::LoadAddrMisaligned { addr });
        }
        if !self.in_ram(addr, len) {
            return Err(Exception::LoadAccessFault { addr });
        }
        Ok(self.read_raw(addr, len))
    }

    /// Checked store (same priority order as [`Memory::load`]).
    ///
    /// # Errors
    ///
    /// Returns the appropriate misaligned/access-fault exception.
    pub fn store(
        &mut self,
        addr: u64,
        width: MemWidth,
        value: u64,
    ) -> Result<StoreEffect, Exception> {
        let len = width.bytes();
        if !addr.is_multiple_of(len) {
            return Err(Exception::StoreAddrMisaligned { addr });
        }
        if self.is_tohost(addr) {
            return Ok(StoreEffect::ToHost(value));
        }
        if !self.in_ram(addr, len) {
            return Err(Exception::StoreAccessFault { addr });
        }
        let masked = match width {
            MemWidth::B => value & 0xff,
            MemWidth::H => value & 0xffff,
            MemWidth::W => value & 0xffff_ffff,
            MemWidth::D => value,
        };
        self.write_raw(addr, len, masked);
        Ok(StoreEffect::Ram)
    }

    /// Checked instruction fetch of one 32-bit word.
    ///
    /// # Errors
    ///
    /// Misaligned PCs raise `InstrAddrMisaligned`; PCs outside RAM raise
    /// `InstrAccessFault`.
    pub fn fetch(&self, pc: u64) -> Result<u32, Exception> {
        if !pc.is_multiple_of(4) {
            return Err(Exception::InstrAddrMisaligned { addr: pc });
        }
        if !self.in_ram(pc, 4) {
            return Err(Exception::InstrAccessFault { addr: pc });
        }
        Ok(self.read_raw(pc, 4) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        Memory::new(DEFAULT_RAM_BASE, 4096)
    }

    #[test]
    fn store_load_all_widths() {
        let mut m = mem();
        let a = DEFAULT_RAM_BASE + 64;
        m.store(a, MemWidth::D, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.load(a, MemWidth::D).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.load(a, MemWidth::W).unwrap(), 0x5566_7788);
        assert_eq!(m.load(a, MemWidth::H).unwrap(), 0x7788);
        assert_eq!(m.load(a, MemWidth::B).unwrap(), 0x88);
        assert_eq!(m.load(a + 4, MemWidth::W).unwrap(), 0x1122_3344);
    }

    #[test]
    fn narrow_store_preserves_neighbours() {
        let mut m = mem();
        let a = DEFAULT_RAM_BASE + 8;
        m.store(a, MemWidth::D, u64::MAX).unwrap();
        m.store(a + 2, MemWidth::H, 0).unwrap();
        assert_eq!(m.load(a, MemWidth::D).unwrap(), 0xffff_ffff_0000_ffff);
    }

    #[test]
    fn misaligned_checked_before_pma() {
        let m = mem();
        // Address both misaligned and outside RAM: misaligned must win —
        // this is the exact priority of the paper's Finding 1.
        let e = m.load(0x3, MemWidth::W).unwrap_err();
        assert_eq!(e, Exception::LoadAddrMisaligned { addr: 0x3 });
    }

    #[test]
    fn out_of_range_faults() {
        let mut m = mem();
        assert_eq!(m.load(0x0, MemWidth::W).unwrap_err(), Exception::LoadAccessFault { addr: 0 });
        assert_eq!(
            m.store(DEFAULT_RAM_BASE + 4096, MemWidth::B, 0).unwrap_err(),
            Exception::StoreAccessFault { addr: DEFAULT_RAM_BASE + 4096 }
        );
        // End-of-RAM straddle.
        assert!(m.load(DEFAULT_RAM_BASE + 4092, MemWidth::W).is_ok());
        assert!(m.load(DEFAULT_RAM_BASE + 4096 - 2, MemWidth::H).is_ok());
        assert!(m.load(DEFAULT_RAM_BASE + 4096 - 4, MemWidth::D).is_err());
    }

    #[test]
    fn tohost_store_halts_loads_fault() {
        let mut m = mem();
        assert_eq!(m.store(TOHOST_ADDR, MemWidth::D, 42).unwrap(), StoreEffect::ToHost(42));
        // Loads from the device region are not readable PMAs.
        assert!(m.load(TOHOST_ADDR, MemWidth::D).is_err());
    }

    #[test]
    fn fetch_checks() {
        let mut m = mem();
        m.load_image(DEFAULT_RAM_BASE, &0x0010_0093u32.to_le_bytes());
        assert_eq!(m.fetch(DEFAULT_RAM_BASE).unwrap(), 0x0010_0093);
        assert_eq!(
            m.fetch(DEFAULT_RAM_BASE + 2).unwrap_err(),
            Exception::InstrAddrMisaligned { addr: DEFAULT_RAM_BASE + 2 }
        );
        assert_eq!(m.fetch(0x1000).unwrap_err(), Exception::InstrAccessFault { addr: 0x1000 });
    }

    #[test]
    #[should_panic(expected = "image outside RAM")]
    fn image_must_fit() {
        let mut m = mem();
        m.load_image(DEFAULT_RAM_BASE + 4090, &[0; 16]);
    }

    #[test]
    fn reset_with_image_matches_fresh_memory() {
        // Dirty the arena all over, reset, and compare byte-for-byte
        // against a brand-new Memory loaded with the same image.
        let mut reused = mem();
        reused.load_image(DEFAULT_RAM_BASE, &[0xde; 64]);
        reused.store(DEFAULT_RAM_BASE + 1024, MemWidth::D, u64::MAX).unwrap();
        reused.write_raw(DEFAULT_RAM_BASE + 4000, 4, 0xdead_beef);
        // Stack-style write at the very top of RAM (second dirty window).
        reused.store(DEFAULT_RAM_BASE + 4088, MemWidth::D, 0x5a5a_5a5a).unwrap();
        let image = [0x13u8, 0x00, 0x10, 0x00, 0x93, 0x01, 0x20, 0x00];
        reused.reset_with_image(DEFAULT_RAM_BASE, &image);

        let mut fresh = mem();
        fresh.load_image(DEFAULT_RAM_BASE, &image);
        for off in (0..4096).step_by(8) {
            assert_eq!(
                reused.read_raw(DEFAULT_RAM_BASE + off, 8),
                fresh.read_raw(DEFAULT_RAM_BASE + off, 8),
                "mismatch at offset {off}"
            );
        }
    }

    #[test]
    fn reset_with_image_clears_repeatedly() {
        let mut m = mem();
        for round in 0..3u64 {
            m.reset_with_image(DEFAULT_RAM_BASE, &round.to_le_bytes());
            assert_eq!(m.read_raw(DEFAULT_RAM_BASE, 8), round);
            assert_eq!(m.read_raw(DEFAULT_RAM_BASE + 8, 8), 0, "tail is clean");
            m.store(DEFAULT_RAM_BASE + 512, MemWidth::D, 0xffff).unwrap();
        }
        m.reset_with_image(DEFAULT_RAM_BASE, &[]);
        assert_eq!(m.read_raw(DEFAULT_RAM_BASE + 512, 8), 0);
    }
}
