//! Architectural CSR file with M/S/U privilege, traps and delegation.
//!
//! Both the golden model and the RTL-style cores embed this type, so
//! privilege semantics cannot drift between them; the RTL cores add their
//! own coverage instrumentation *around* it.

use chatfuzz_isa::csr::mstatus;
use chatfuzz_isa::{Csr, CsrOp, Exception, PrivLevel};

/// Error for CSR accesses that must raise an illegal-instruction exception.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrIllegal;

/// The counter-enable bits of `mcounteren`/`scounteren`.
const COUNTEREN_MASK: u64 = 0b111;
/// Delegatable synchronous causes (ecall-from-M, cause 11, is never
/// delegatable; causes 10/14 are reserved).
const MEDELEG_MASK: u64 = 0xb3ff;
/// Supervisor interrupt bits (SSIP/STIP/SEIP).
const MIDELEG_MASK: u64 = (1 << 1) | (1 << 5) | (1 << 9);
/// Implemented interrupt-enable/pending bits.
const MIE_MASK: u64 = (1 << 1) | (1 << 3) | (1 << 5) | (1 << 7) | (1 << 9) | (1 << 11);
/// Writable `mstatus` bits.
const MSTATUS_WMASK: u64 = mstatus::SIE
    | mstatus::MIE
    | mstatus::SPIE
    | mstatus::MPIE
    | mstatus::SPP
    | mstatus::MPP_MASK
    | mstatus::MPRV
    | mstatus::SUM
    | mstatus::MXR
    | mstatus::TVM
    | mstatus::TW
    | mstatus::TSR;
/// UXL/SXL read as 2 (XLEN=64) in `mstatus` bits 32–35.
const MSTATUS_XL_FIELDS: u64 = (2 << 32) | (2 << 34);

/// `misa` for RV64IMA with S and U modes.
const MISA_VALUE: u64 =
    (2 << 62) | (1 << 0) /* A */ | (1 << 8) /* I */ | (1 << 12) /* M */ | (1 << 18) /* S */
        | (1 << 20) /* U */;

/// The architectural CSR state of one hart.
#[derive(Debug, Clone)]
pub struct CsrFile {
    /// Current privilege level.
    pub priv_level: PrivLevel,
    mstatus: u64,
    mtvec: u64,
    mepc: u64,
    mcause: u64,
    mtval: u64,
    mscratch: u64,
    medeleg: u64,
    mideleg: u64,
    mie: u64,
    mip: u64,
    mcounteren: u64,
    stvec: u64,
    sepc: u64,
    scause: u64,
    stval: u64,
    sscratch: u64,
    scounteren: u64,
    satp: u64,
    mcycle: u64,
    minstret: u64,
}

impl Default for CsrFile {
    fn default() -> Self {
        CsrFile::new()
    }
}

impl CsrFile {
    /// Reset state: M-mode, all trap state zero.
    pub fn new() -> CsrFile {
        CsrFile {
            priv_level: PrivLevel::Machine,
            mstatus: 0,
            mtvec: 0,
            mepc: 0,
            mcause: 0,
            mtval: 0,
            mscratch: 0,
            medeleg: 0,
            mideleg: 0,
            mie: 0,
            mip: 0,
            mcounteren: 0,
            stvec: 0,
            sepc: 0,
            scause: 0,
            stval: 0,
            sscratch: 0,
            scounteren: 0,
            satp: 0,
            mcycle: 0,
            minstret: 0,
        }
    }

    /// Advances the cycle counter (the golden model counts one per step;
    /// the RTL cores count real simulated cycles).
    pub fn tick_cycle(&mut self, cycles: u64) {
        self.mcycle = self.mcycle.wrapping_add(cycles);
    }

    /// Advances the retired-instruction counter.
    pub fn tick_instret(&mut self) {
        self.minstret = self.minstret.wrapping_add(1);
    }

    /// Current `mstatus` (with the hardwired XL fields).
    pub fn mstatus(&self) -> u64 {
        self.mstatus | MSTATUS_XL_FIELDS
    }

    /// Current `mtvec`.
    pub fn mtvec(&self) -> u64 {
        self.mtvec
    }

    /// Current `stvec`.
    pub fn stvec(&self) -> u64 {
        self.stvec
    }

    /// Raw read with privilege checking.
    ///
    /// # Errors
    ///
    /// [`CsrIllegal`] if the CSR is unimplemented or requires higher
    /// privilege; the caller raises the illegal-instruction exception.
    pub fn read(&self, addr: u16) -> Result<u64, CsrIllegal> {
        self.check_priv(addr)?;
        let csr = Csr::from_raw(addr);
        let value = match csr {
            Csr::MSTATUS => self.mstatus(),
            Csr::MISA => MISA_VALUE,
            Csr::MEDELEG => self.medeleg,
            Csr::MIDELEG => self.mideleg,
            Csr::MIE => self.mie,
            Csr::MTVEC => self.mtvec,
            Csr::MCOUNTEREN => self.mcounteren,
            Csr::MSCRATCH => self.mscratch,
            Csr::MEPC => self.mepc,
            Csr::MCAUSE => self.mcause,
            Csr::MTVAL => self.mtval,
            Csr::MIP => self.mip,
            Csr::MCYCLE => self.mcycle,
            Csr::MINSTRET => self.minstret,
            Csr::MVENDORID => 0,
            Csr::MARCHID => 0x23,
            Csr::MIMPID => 1,
            Csr::MHARTID => 0,
            Csr::SSTATUS => (self.mstatus & mstatus::SSTATUS_MASK) | MSTATUS_XL_FIELDS,
            Csr::SIE => self.mie & self.mideleg,
            Csr::STVEC => self.stvec,
            Csr::SCOUNTEREN => self.scounteren,
            Csr::SSCRATCH => self.sscratch,
            Csr::SEPC => self.sepc,
            Csr::SCAUSE => self.scause,
            Csr::STVAL => self.stval,
            Csr::SIP => self.mip & self.mideleg,
            Csr::SATP => {
                self.check_satp_access()?;
                self.satp
            }
            Csr::CYCLE => {
                self.check_counter(0)?;
                self.mcycle
            }
            Csr::TIME => {
                self.check_counter(1)?;
                self.mcycle
            }
            Csr::INSTRET => {
                self.check_counter(2)?;
                self.minstret
            }
            _ => return Err(CsrIllegal),
        };
        Ok(value)
    }

    /// Raw write with privilege and read-only checking.
    ///
    /// # Errors
    ///
    /// [`CsrIllegal`] under the same conditions as [`CsrFile::read`], plus
    /// writes to read-only CSRs.
    pub fn write(&mut self, addr: u16, value: u64) -> Result<(), CsrIllegal> {
        self.check_priv(addr)?;
        let csr = Csr::from_raw(addr);
        if csr.is_read_only() {
            return Err(CsrIllegal);
        }
        match csr {
            Csr::MSTATUS => self.write_mstatus(value, MSTATUS_WMASK),
            Csr::MISA => {} // WARL: writes ignored, extensions are fixed
            Csr::MEDELEG => self.medeleg = value & MEDELEG_MASK,
            Csr::MIDELEG => self.mideleg = value & MIDELEG_MASK,
            Csr::MIE => self.mie = value & MIE_MASK,
            Csr::MTVEC => self.mtvec = value & !0b11, // direct mode only
            Csr::MCOUNTEREN => self.mcounteren = value & COUNTEREN_MASK,
            Csr::MSCRATCH => self.mscratch = value,
            Csr::MEPC => self.mepc = value & !0b11, // IALIGN=32
            Csr::MCAUSE => self.mcause = value,
            Csr::MTVAL => self.mtval = value,
            Csr::MIP => self.mip = value & MIDELEG_MASK, // only S bits writable
            Csr::MCYCLE => self.mcycle = value,
            Csr::MINSTRET => self.minstret = value,
            Csr::SSTATUS => self.write_mstatus(value, mstatus::SSTATUS_MASK),
            Csr::SIE => {
                let mask = MIE_MASK & self.mideleg;
                self.mie = (self.mie & !mask) | (value & mask);
            }
            Csr::STVEC => self.stvec = value & !0b11,
            Csr::SCOUNTEREN => self.scounteren = value & COUNTEREN_MASK,
            Csr::SSCRATCH => self.sscratch = value,
            Csr::SEPC => self.sepc = value & !0b11,
            Csr::SCAUSE => self.scause = value,
            Csr::STVAL => self.stval = value,
            Csr::SIP => {
                let mask = (1 << 1) & self.mideleg; // only SSIP writable from S
                self.mip = (self.mip & !mask) | (value & mask);
            }
            Csr::SATP => {
                self.check_satp_access()?;
                // Only bare mode is implemented: writes selecting a paging
                // mode are ignored wholesale (a legal WARL behaviour).
                if value >> 60 == 0 {
                    self.satp = value;
                }
            }
            _ => return Err(CsrIllegal),
        }
        Ok(())
    }

    fn write_mstatus(&mut self, value: u64, mask: u64) {
        let mut next = (self.mstatus & !mask) | (value & mask);
        // MPP is WARL over {U, S, M}; normalise the reserved encoding.
        if (next & mstatus::MPP_MASK) >> mstatus::MPP_SHIFT == 0b10 {
            next &= !mstatus::MPP_MASK;
        }
        self.mstatus = next;
    }

    fn check_priv(&self, addr: u16) -> Result<(), CsrIllegal> {
        let required = (addr >> 8) & 0b11;
        if (self.priv_level.bits() as u16) < required {
            return Err(CsrIllegal);
        }
        Ok(())
    }

    fn check_satp_access(&self) -> Result<(), CsrIllegal> {
        if self.priv_level == PrivLevel::Supervisor && self.mstatus & mstatus::TVM != 0 {
            return Err(CsrIllegal);
        }
        Ok(())
    }

    fn check_counter(&self, bit: u32) -> Result<(), CsrIllegal> {
        match self.priv_level {
            PrivLevel::Machine => Ok(()),
            PrivLevel::Supervisor => {
                if self.mcounteren & (1 << bit) == 0 {
                    Err(CsrIllegal)
                } else {
                    Ok(())
                }
            }
            PrivLevel::User => {
                if self.mcounteren & (1 << bit) == 0 || self.scounteren & (1 << bit) == 0 {
                    Err(CsrIllegal)
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Executes a whole Zicsr instruction: returns the old value to write
    /// back to `rd`. `src` is the register value or zero-extended immediate;
    /// `src_is_zero_arg` is true when the source *designator* is `x0`/imm 0,
    /// which suppresses the write for `csrrs`/`csrrc` (making reads of
    /// read-only CSRs legal).
    ///
    /// # Errors
    ///
    /// [`CsrIllegal`] per the access rules above.
    pub fn execute(
        &mut self,
        op: CsrOp,
        addr: u16,
        src: u64,
        src_is_zero_arg: bool,
    ) -> Result<u64, CsrIllegal> {
        match op {
            CsrOp::Rw => {
                // csrrw always writes; the read is unconditional here since
                // none of our CSRs have read side effects.
                let old = self.read(addr)?;
                self.write(addr, src)?;
                Ok(old)
            }
            CsrOp::Rs => {
                let old = self.read(addr)?;
                if !src_is_zero_arg {
                    self.write(addr, old | src)?;
                }
                Ok(old)
            }
            CsrOp::Rc => {
                let old = self.read(addr)?;
                if !src_is_zero_arg {
                    self.write(addr, old & !src)?;
                }
                Ok(old)
            }
        }
    }

    /// Whether a trap for `cause` (synchronous) from the current privilege
    /// would be delegated to S-mode.
    pub fn delegated_to_s(&self, cause: u64) -> bool {
        self.priv_level != PrivLevel::Machine && self.medeleg & (1u64 << cause) != 0
    }

    /// Takes a synchronous trap: updates all trap CSRs and the privilege
    /// level, and returns `(target_priv, handler_pc)`.
    pub fn take_trap(&mut self, e: &Exception, pc: u64) -> (PrivLevel, u64) {
        let cause = e.cause();
        let from = self.priv_level;
        if self.delegated_to_s(cause) {
            self.scause = cause;
            self.sepc = pc & !0b11;
            self.stval = e.tval();
            // SPIE <- SIE; SIE <- 0; SPP <- (from == S)
            let sie = (self.mstatus & mstatus::SIE) != 0;
            self.mstatus &= !(mstatus::SPIE | mstatus::SIE | mstatus::SPP);
            if sie {
                self.mstatus |= mstatus::SPIE;
            }
            if from == PrivLevel::Supervisor {
                self.mstatus |= mstatus::SPP;
            }
            self.priv_level = PrivLevel::Supervisor;
            (PrivLevel::Supervisor, self.stvec)
        } else {
            self.mcause = cause;
            self.mepc = pc & !0b11;
            self.mtval = e.tval();
            let mie = (self.mstatus & mstatus::MIE) != 0;
            self.mstatus &= !(mstatus::MPIE | mstatus::MIE | mstatus::MPP_MASK);
            if mie {
                self.mstatus |= mstatus::MPIE;
            }
            self.mstatus |= from.bits() << mstatus::MPP_SHIFT;
            self.priv_level = PrivLevel::Machine;
            (PrivLevel::Machine, self.mtvec)
        }
    }

    /// Executes `mret`.
    ///
    /// # Errors
    ///
    /// [`CsrIllegal`] if not currently in M-mode.
    pub fn mret(&mut self) -> Result<u64, CsrIllegal> {
        if self.priv_level != PrivLevel::Machine {
            return Err(CsrIllegal);
        }
        let mpp = (self.mstatus & mstatus::MPP_MASK) >> mstatus::MPP_SHIFT;
        let new_priv = PrivLevel::from_bits(mpp).unwrap_or(PrivLevel::User);
        let mpie = self.mstatus & mstatus::MPIE != 0;
        self.mstatus &= !(mstatus::MIE | mstatus::MPP_MASK);
        if mpie {
            self.mstatus |= mstatus::MIE;
        }
        self.mstatus |= mstatus::MPIE;
        if new_priv != PrivLevel::Machine {
            self.mstatus &= !mstatus::MPRV;
        }
        self.priv_level = new_priv;
        Ok(self.mepc)
    }

    /// Executes `sret`.
    ///
    /// # Errors
    ///
    /// [`CsrIllegal`] from U-mode, or from S-mode when `mstatus.TSR` is set.
    pub fn sret(&mut self) -> Result<u64, CsrIllegal> {
        match self.priv_level {
            PrivLevel::User => return Err(CsrIllegal),
            PrivLevel::Supervisor if self.mstatus & mstatus::TSR != 0 => return Err(CsrIllegal),
            _ => {}
        }
        let new_priv =
            if self.mstatus & mstatus::SPP != 0 { PrivLevel::Supervisor } else { PrivLevel::User };
        let spie = self.mstatus & mstatus::SPIE != 0;
        self.mstatus &= !(mstatus::SIE | mstatus::SPP);
        if spie {
            self.mstatus |= mstatus::SIE;
        }
        self.mstatus |= mstatus::SPIE;
        if new_priv != PrivLevel::Machine {
            self.mstatus &= !mstatus::MPRV;
        }
        self.priv_level = new_priv;
        Ok(self.sepc)
    }

    /// Whether `wfi` is illegal at the current privilege (timeout-wait).
    pub fn wfi_is_illegal(&self) -> bool {
        self.priv_level != PrivLevel::Machine && self.mstatus & mstatus::TW != 0
    }

    /// Whether `sfence.vma` is illegal at the current privilege.
    pub fn sfence_is_illegal(&self) -> bool {
        match self.priv_level {
            PrivLevel::User => true,
            PrivLevel::Supervisor => self.mstatus & mstatus::TVM != 0,
            PrivLevel::Machine => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_state_is_machine_mode() {
        let c = CsrFile::new();
        assert_eq!(c.priv_level, PrivLevel::Machine);
        assert_eq!(c.read(Csr::MTVEC.addr()).unwrap(), 0);
    }

    #[test]
    fn mtvec_forces_direct_mode() {
        let mut c = CsrFile::new();
        c.write(Csr::MTVEC.addr(), 0x8000_0041).unwrap();
        assert_eq!(c.read(Csr::MTVEC.addr()).unwrap(), 0x8000_0040);
    }

    #[test]
    fn read_only_csrs_reject_writes() {
        let mut c = CsrFile::new();
        assert_eq!(c.write(Csr::MHARTID.addr(), 1), Err(CsrIllegal));
        assert!(c.read(Csr::MHARTID.addr()).is_ok());
    }

    #[test]
    fn privilege_gates_access() {
        let mut c = CsrFile::new();
        c.priv_level = PrivLevel::User;
        assert_eq!(c.read(Csr::MSTATUS.addr()), Err(CsrIllegal));
        assert_eq!(c.read(Csr::SSTATUS.addr()), Err(CsrIllegal));
        c.priv_level = PrivLevel::Supervisor;
        assert!(c.read(Csr::SSTATUS.addr()).is_ok());
        assert_eq!(c.read(Csr::MSTATUS.addr()), Err(CsrIllegal));
    }

    #[test]
    fn counter_enable_chain() {
        let mut c = CsrFile::new();
        c.priv_level = PrivLevel::User;
        assert_eq!(c.read(Csr::CYCLE.addr()), Err(CsrIllegal));
        c.priv_level = PrivLevel::Machine;
        c.write(Csr::MCOUNTEREN.addr(), 0b1).unwrap();
        c.priv_level = PrivLevel::Supervisor;
        assert!(c.read(Csr::CYCLE.addr()).is_ok());
        c.priv_level = PrivLevel::User;
        assert_eq!(c.read(Csr::CYCLE.addr()), Err(CsrIllegal)); // scounteren still 0
        c.priv_level = PrivLevel::Machine;
        c.write(Csr::SCOUNTEREN.addr(), 0b1).unwrap();
        c.priv_level = PrivLevel::User;
        assert!(c.read(Csr::CYCLE.addr()).is_ok());
    }

    #[test]
    fn trap_to_machine_saves_state() {
        let mut c = CsrFile::new();
        c.write(Csr::MTVEC.addr(), 0x8000_0100).unwrap();
        c.write(Csr::MSTATUS.addr(), mstatus::MIE).unwrap();
        let (to, vec) = c.take_trap(&Exception::IllegalInstr { word: 0xdead }, 0x8000_0004);
        assert_eq!(to, PrivLevel::Machine);
        assert_eq!(vec, 0x8000_0100);
        assert_eq!(c.read(Csr::MEPC.addr()).unwrap(), 0x8000_0004);
        assert_eq!(c.read(Csr::MCAUSE.addr()).unwrap(), 2);
        assert_eq!(c.read(Csr::MTVAL.addr()).unwrap(), 0xdead);
        let ms = c.mstatus();
        assert_eq!(ms & mstatus::MIE, 0);
        assert_ne!(ms & mstatus::MPIE, 0);
        assert_eq!((ms & mstatus::MPP_MASK) >> mstatus::MPP_SHIFT, 3);
    }

    #[test]
    fn delegation_routes_user_trap_to_supervisor() {
        let mut c = CsrFile::new();
        c.write(Csr::MEDELEG.addr(), 1 << 8).unwrap(); // ecall from U
        c.write(Csr::STVEC.addr(), 0x8000_0200).unwrap();
        c.priv_level = PrivLevel::User;
        let (to, vec) = c.take_trap(&Exception::Ecall { from: PrivLevel::User }, 0x8000_0010);
        assert_eq!(to, PrivLevel::Supervisor);
        assert_eq!(vec, 0x8000_0200);
        assert_eq!(c.priv_level, PrivLevel::Supervisor);
        c.priv_level = PrivLevel::Machine;
        assert_eq!(c.read(Csr::SCAUSE.addr()).unwrap(), 8);
        assert_eq!(c.read(Csr::SEPC.addr()).unwrap(), 0x8000_0010);
    }

    #[test]
    fn ecall_from_m_never_delegates() {
        let mut c = CsrFile::new();
        c.write(Csr::MEDELEG.addr(), u64::MAX).unwrap();
        assert_eq!(c.read(Csr::MEDELEG.addr()).unwrap() & (1 << 11), 0);
        let (to, _) = c.take_trap(&Exception::Ecall { from: PrivLevel::Machine }, 0x8000_0000);
        assert_eq!(to, PrivLevel::Machine);
    }

    #[test]
    fn mret_restores_privilege() {
        let mut c = CsrFile::new();
        c.write(Csr::MEPC.addr(), 0x8000_0020).unwrap();
        c.write(Csr::MSTATUS.addr(), 0).unwrap(); // MPP = U
        let pc = c.mret().unwrap();
        assert_eq!(pc, 0x8000_0020);
        assert_eq!(c.priv_level, PrivLevel::User);
        assert_eq!(c.mret(), Err(CsrIllegal)); // now illegal from U
    }

    #[test]
    fn sret_respects_tsr() {
        let mut c = CsrFile::new();
        c.write(Csr::MSTATUS.addr(), mstatus::TSR | mstatus::SPP).unwrap();
        c.priv_level = PrivLevel::Supervisor;
        assert_eq!(c.sret(), Err(CsrIllegal));
        c.priv_level = PrivLevel::Machine;
        c.write(Csr::MSTATUS.addr(), mstatus::SPP).unwrap();
        c.priv_level = PrivLevel::Supervisor;
        let _ = c.sret().unwrap();
        assert_eq!(c.priv_level, PrivLevel::Supervisor); // SPP was S
    }

    #[test]
    fn csrrs_with_x0_reads_read_only() {
        let mut c = CsrFile::new();
        assert!(c.execute(CsrOp::Rs, Csr::MHARTID.addr(), 0, true).is_ok());
        assert_eq!(c.execute(CsrOp::Rs, Csr::MHARTID.addr(), 1, false), Err(CsrIllegal));
    }

    #[test]
    fn csrrw_swaps() {
        let mut c = CsrFile::new();
        let old = c.execute(CsrOp::Rw, Csr::MSCRATCH.addr(), 0x55, false).unwrap();
        assert_eq!(old, 0);
        let old = c.execute(CsrOp::Rw, Csr::MSCRATCH.addr(), 0xaa, false).unwrap();
        assert_eq!(old, 0x55);
    }

    #[test]
    fn csrrc_clears_bits() {
        let mut c = CsrFile::new();
        c.write(Csr::MSCRATCH.addr(), 0xff).unwrap();
        c.execute(CsrOp::Rc, Csr::MSCRATCH.addr(), 0x0f, false).unwrap();
        assert_eq!(c.read(Csr::MSCRATCH.addr()).unwrap(), 0xf0);
    }

    #[test]
    fn mpp_warl_normalisation() {
        let mut c = CsrFile::new();
        c.write(Csr::MSTATUS.addr(), 0b10 << mstatus::MPP_SHIFT).unwrap();
        assert_eq!(c.mstatus() & mstatus::MPP_MASK, 0);
    }

    #[test]
    fn satp_bare_only() {
        let mut c = CsrFile::new();
        c.write(Csr::SATP.addr(), (8 << 60) | 0x1234).unwrap(); // Sv39: ignored
        assert_eq!(c.read(Csr::SATP.addr()).unwrap(), 0);
        c.write(Csr::SATP.addr(), 0x1234).unwrap();
        assert_eq!(c.read(Csr::SATP.addr()).unwrap(), 0x1234);
    }

    #[test]
    fn wfi_and_sfence_legality() {
        let mut c = CsrFile::new();
        assert!(!c.wfi_is_illegal());
        c.write(Csr::MSTATUS.addr(), mstatus::TW | mstatus::TVM).unwrap();
        c.priv_level = PrivLevel::Supervisor;
        assert!(c.wfi_is_illegal());
        assert!(c.sfence_is_illegal());
        c.priv_level = PrivLevel::User;
        assert!(c.sfence_is_illegal());
    }
}
