//! The golden-model simulator: program in, trace out.

use crate::hart::{Hart, StepResult};
use crate::mem::{Memory, DEFAULT_RAM_BASE, DEFAULT_RAM_SIZE};
use crate::trace::{ExitReason, Trace};

/// Configuration of a golden-model run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftCoreConfig {
    /// RAM base address (also the reset PC).
    pub ram_base: u64,
    /// RAM size in bytes.
    pub ram_size: u64,
    /// Maximum committed slots before `BudgetExhausted`.
    pub max_steps: usize,
    /// Maximum taken traps before `TrapStorm`.
    pub max_traps: usize,
}

impl Default for SoftCoreConfig {
    fn default() -> Self {
        SoftCoreConfig {
            ram_base: DEFAULT_RAM_BASE,
            ram_size: DEFAULT_RAM_SIZE,
            max_steps: 4096,
            max_traps: 64,
        }
    }
}

/// The golden-model ("Spike-substitute") simulator.
///
/// # Examples
///
/// ```
/// use chatfuzz_softcore::{SoftCore, SoftCoreConfig};
/// use chatfuzz_softcore::trace::ExitReason;
/// use chatfuzz_isa::asm::Assembler;
/// use chatfuzz_isa::{Instr, SystemOp};
///
/// let mut asm = Assembler::new();
/// asm.nop();
/// asm.push(Instr::System(SystemOp::Wfi));
/// let trace = SoftCore::new(SoftCoreConfig::default())
///     .run(&asm.assemble_bytes().unwrap());
/// assert_eq!(trace.exit, ExitReason::Wfi);
/// assert_eq!(trace.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SoftCore {
    config: SoftCoreConfig,
}

impl SoftCore {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SoftCoreConfig) -> SoftCore {
        SoftCore { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SoftCoreConfig {
        &self.config
    }

    /// Runs `program` (a little-endian instruction image loaded at the RAM
    /// base) from reset to completion and returns the architectural trace.
    ///
    /// Allocates a fresh memory arena per call; batch workloads should use
    /// a [`SoftCoreRunner`], which recycles the hart and trace buffers.
    pub fn run(&self, program: &[u8]) -> Trace {
        let mut mem = Memory::new(self.config.ram_base, self.config.ram_size);
        let image_len = program.len().min(self.config.ram_size as usize);
        mem.load_image(self.config.ram_base, &program[..image_len]);
        let mut hart = Hart::new(mem, self.config.ram_base);
        self.run_hart(&mut hart)
    }

    /// Runs an already-prepared hart to completion (programs loaded at
    /// arbitrary addresses, pre-seeded register state, …).
    pub fn run_hart(&self, hart: &mut Hart) -> Trace {
        let mut trace = Trace::scratch();
        self.run_hart_into(hart, &mut trace);
        trace
    }

    /// [`SoftCore::run_hart`] into a caller-owned trace buffer (records are
    /// cleared first, capacity is kept).
    pub fn run_hart_into(&self, hart: &mut Hart, trace: &mut Trace) {
        trace.records.clear();
        let mut traps = 0usize;
        for _ in 0..self.config.max_steps {
            match hart.step() {
                StepResult::Committed(record) => {
                    if record.trap.is_some() {
                        traps += 1;
                    }
                    trace.records.push(record);
                    if traps > self.config.max_traps {
                        trace.exit = ExitReason::TrapStorm;
                        return;
                    }
                }
                StepResult::Halt(exit, record) => {
                    trace.records.extend(record);
                    trace.exit = exit;
                    return;
                }
            }
        }
        trace.exit = ExitReason::BudgetExhausted;
    }
}

/// A reusable golden-model execution arena: one hart (registers, CSRs,
/// memory, decode cache) recycled across an unbounded stream of programs.
///
/// [`SoftCoreRunner::run_into`] is bit-identical to [`SoftCore::run`] for
/// the same program (property-tested), but performs zero allocations in
/// steady state: RAM is re-zeroed only over the span the previous test
/// dirtied, the decode cache persists (word-validated), and trace records
/// go into a caller-owned buffer.
///
/// # Examples
///
/// ```
/// use chatfuzz_softcore::{SoftCore, SoftCoreConfig, SoftCoreRunner};
/// use chatfuzz_isa::asm::Assembler;
/// use chatfuzz_isa::{Instr, SystemOp};
///
/// let mut asm = Assembler::new();
/// asm.nop();
/// asm.push(Instr::System(SystemOp::Wfi));
/// let program = asm.assemble_bytes().unwrap();
///
/// let mut runner = SoftCoreRunner::new(SoftCoreConfig::default());
/// let one_shot = SoftCore::new(SoftCoreConfig::default()).run(&program);
/// assert_eq!(runner.run(&program), one_shot);
/// assert_eq!(runner.run(&program), one_shot); // arena reuse, same trace
/// ```
#[derive(Debug, Clone)]
pub struct SoftCoreRunner {
    sim: SoftCore,
    hart: Hart,
}

impl SoftCoreRunner {
    /// Builds the arena (the only allocation of the runner's lifetime).
    pub fn new(config: SoftCoreConfig) -> SoftCoreRunner {
        let mem = Memory::new(config.ram_base, config.ram_size);
        let hart = Hart::new(mem, config.ram_base);
        SoftCoreRunner { sim: SoftCore::new(config), hart }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SoftCoreConfig {
        self.sim.config()
    }

    /// Runs `program` from reset into a caller-owned trace buffer.
    pub fn run_into(&mut self, program: &[u8], trace: &mut Trace) {
        let config = self.sim.config();
        let image_len = program.len().min(config.ram_size as usize);
        self.hart.mem.reset_with_image(config.ram_base, &program[..image_len]);
        self.hart.reset(config.ram_base);
        self.sim.run_hart_into(&mut self.hart, trace);
    }

    /// Runs `program` from reset, returning an owned trace.
    pub fn run(&mut self, program: &[u8]) -> Trace {
        let mut trace = Trace::scratch();
        self.run_into(program, &mut trace);
        trace
    }
}

impl Default for SoftCore {
    fn default() -> Self {
        SoftCore::new(SoftCoreConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_isa::asm::Assembler;
    use chatfuzz_isa::{AluOp, BranchCond, Instr, Reg, SystemOp};

    #[test]
    fn empty_program_faults_immediately() {
        // All-zero memory decodes as the defined-illegal word.
        let trace = SoftCore::default().run(&[]);
        assert!(matches!(trace.exit, ExitReason::UnhandledTrap(_)));
    }

    #[test]
    fn budget_exhaustion_on_infinite_loop() {
        let mut asm = Assembler::new();
        asm.label("spin");
        asm.jal_to(Reg::X0, "spin");
        let config = SoftCoreConfig { max_steps: 100, ..Default::default() };
        let trace = SoftCore::new(config).run(&asm.assemble_bytes().unwrap());
        assert_eq!(trace.exit, ExitReason::BudgetExhausted);
        assert_eq!(trace.len(), 100);
    }

    #[test]
    fn trap_storm_detected() {
        // mtvec points at the faulting instruction itself -> trap loop.
        let t0 = Reg::new(5).unwrap();
        let mut asm = Assembler::new();
        asm.push(Instr::Auipc { rd: t0, imm: 0 });
        asm.push(Instr::OpImm { op: AluOp::Add, rd: t0, rs1: t0, imm: 12, word: false });
        asm.push(Instr::Csr {
            op: chatfuzz_isa::CsrOp::Rw,
            rd: Reg::X0,
            csr: chatfuzz_isa::Csr::MTVEC.addr(),
            src: chatfuzz_isa::CsrSrc::Reg(t0),
        });
        asm.push(Instr::System(SystemOp::Ecall)); // at +12: traps to itself
        let config = SoftCoreConfig { max_traps: 8, ..Default::default() };
        let trace = SoftCore::new(config).run(&asm.assemble_bytes().unwrap());
        assert_eq!(trace.exit, ExitReason::TrapStorm);
        assert!(trace.trap_count() > 8);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut asm = Assembler::new();
        let a0 = Reg::new(10).unwrap();
        asm.li(a0, 10);
        asm.label("loop");
        asm.push(Instr::OpImm { op: AluOp::Add, rd: a0, rs1: a0, imm: -1, word: false });
        asm.branch_to(BranchCond::Ne, a0, Reg::X0, "loop");
        asm.push(Instr::System(SystemOp::Wfi));
        let bytes = asm.assemble_bytes().unwrap();
        let sim = SoftCore::default();
        let t1 = sim.run(&bytes);
        let t2 = sim.run(&bytes);
        assert_eq!(t1, t2);
        assert_eq!(t1.exit, ExitReason::Wfi);
    }
}
