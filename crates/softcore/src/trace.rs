//! The architectural commit-trace format shared by all simulators.
//!
//! Both the golden model and the microarchitectural cores emit one
//! [`CommitRecord`] per architecturally committed instruction (or per taken
//! trap). The Mismatch Detector diffs two [`Trace`]s record by record.

use std::fmt;

use chatfuzz_isa::{Exception, PrivLevel, Reg};

/// A data-memory effect attached to a commit record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemEffect {
    /// Effective address.
    pub addr: u64,
    /// Access size in bytes.
    pub bytes: u8,
    /// `true` for stores/AMOs (AMOs also report the loaded value via `rd`).
    pub is_store: bool,
    /// Stored value (stores/AMOs) or loaded value (loads).
    pub value: u64,
}

/// A trap taken *instead of* (or while) committing an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrapRecord {
    /// The synchronous exception.
    pub exception: Exception,
    /// Privilege level the trap was taken from.
    pub from: PrivLevel,
    /// Privilege level the trap vectored to.
    pub to: PrivLevel,
    /// The trap-vector PC control resumed at.
    pub handler_pc: u64,
}

/// One committed instruction (or trapped instruction slot).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CommitRecord {
    /// Program counter of the instruction.
    pub pc: u64,
    /// Raw instruction word (0 if the fetch itself faulted).
    pub word: u32,
    /// Privilege level the instruction executed at.
    pub priv_level: PrivLevel,
    /// Register write-back, if any. The golden model never reports writes
    /// to `x0`; a DUT tracer that does is exhibiting the paper's Finding 3.
    pub rd_write: Option<(Reg, u64)>,
    /// Data-memory effect, if any.
    pub mem: Option<MemEffect>,
    /// Trap taken at this slot, if any.
    pub trap: Option<TrapRecord>,
}

impl CommitRecord {
    /// A compact one-line rendering used in mismatch reports.
    pub fn summary(&self) -> String {
        let mut s = format!("[{}] pc={:#010x} {:#010x}", self.priv_level, self.pc, self.word);
        if let Some((rd, v)) = self.rd_write {
            s.push_str(&format!(" {rd}<-{v:#x}"));
        }
        if let Some(m) = self.mem {
            let dir = if m.is_store { "st" } else { "ld" };
            s.push_str(&format!(" {dir}{}b @{:#x}={:#x}", m.bytes, m.addr, m.value));
        }
        if let Some(t) = self.trap {
            s.push_str(&format!(" trap:{} -> {}@{:#x}", t.exception, t.to, t.handler_pc));
        }
        s
    }
}

impl fmt::Display for CommitRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Why a simulation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExitReason {
    /// Program executed `wfi` (clean halt in the no-interrupt model).
    Wfi,
    /// Program stored `value` to the `tohost` device.
    ToHost(u64),
    /// The committed-instruction budget ran out.
    BudgetExhausted,
    /// A trap was taken while the trap vector is unset (`mtvec == 0`).
    UnhandledTrap(Exception),
    /// More traps were taken than the configured per-run limit.
    TrapStorm,
}

impl fmt::Display for ExitReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExitReason::Wfi => write!(f, "wfi halt"),
            ExitReason::ToHost(v) => write!(f, "tohost={v:#x}"),
            ExitReason::BudgetExhausted => write!(f, "instruction budget exhausted"),
            ExitReason::UnhandledTrap(e) => write!(f, "unhandled trap: {e}"),
            ExitReason::TrapStorm => write!(f, "trap storm"),
        }
    }
}

/// A full execution trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Commit records in program order.
    pub records: Vec<CommitRecord>,
    /// Why the run ended.
    pub exit: ExitReason,
}

impl Trace {
    /// An empty trace buffer for the `*_into` reuse APIs. The placeholder
    /// exit reason is always overwritten by a run.
    pub fn scratch() -> Trace {
        Trace { records: Vec::new(), exit: ExitReason::BudgetExhausted }
    }

    /// Number of committed slots.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing committed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Count of records that took a trap.
    pub fn trap_count(&self) -> usize {
        self.records.iter().filter(|r| r.trap.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> CommitRecord {
        CommitRecord {
            pc: 0x8000_0000,
            word: 0x0010_0093,
            priv_level: PrivLevel::Machine,
            rd_write: Some((Reg::RA, 1)),
            mem: None,
            trap: None,
        }
    }

    #[test]
    fn summary_contains_key_fields() {
        let s = record().summary();
        assert!(s.contains("pc=0x80000000"));
        assert!(s.contains("ra<-0x1"));
    }

    #[test]
    fn summary_shows_mem_and_trap() {
        let mut r = record();
        r.rd_write = None;
        r.mem = Some(MemEffect { addr: 0x8000_0100, bytes: 8, is_store: true, value: 7 });
        r.trap = Some(TrapRecord {
            exception: Exception::IllegalInstr { word: 0 },
            from: PrivLevel::Machine,
            to: PrivLevel::Machine,
            handler_pc: 0x8000_0040,
        });
        let s = r.summary();
        assert!(s.contains("st8b"));
        assert!(s.contains("trap:"));
    }

    #[test]
    fn trace_trap_count() {
        let mut t = Trace { records: vec![record(), record()], exit: ExitReason::Wfi };
        assert_eq!(t.trap_count(), 0);
        t.records[1].trap = Some(TrapRecord {
            exception: Exception::Breakpoint { addr: 0 },
            from: PrivLevel::Machine,
            to: PrivLevel::Machine,
            handler_pc: 0,
        });
        assert_eq!(t.trap_count(), 1);
    }

    #[test]
    fn exit_reason_display() {
        assert_eq!(ExitReason::Wfi.to_string(), "wfi halt");
        assert_eq!(ExitReason::ToHost(1).to_string(), "tohost=0x1");
    }
}
